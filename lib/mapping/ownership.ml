(** Ownership of references: who holds a given array element or scalar.

    Two views are provided:

    - a {e concrete} view ({!owner_of_element}) used by the SPMD runtime
      and the timing simulator: given actual index values, which grid
      coordinates own the element;
    - a {e symbolic} view ({!owner_spec}) used at compile time by the
      communication analysis: per grid dimension, the owner coordinate as
      a function (affine form over loop indices pushed through the
      distribution format). *)

open Hpf_lang
open Hpf_analysis

(** Per-grid-dimension symbolic owner. *)
type owner_dim =
  | O_all  (** replicated: available at every coordinate *)
  | O_fixed of int
  | O_affine of {
      fmt : Dist.format;
      nprocs : int;
      pos : Affine.t;  (** 0-based position; coord = owner_coord fmt pos *)
    }
  | O_unknown  (** non-affine subscript: owner varies unpredictably *)

type spec = owner_dim array  (** one entry per grid dimension *)

let pp_owner_dim ppf = function
  | O_all -> Fmt.string ppf "*"
  | O_fixed c -> Fmt.pf ppf "@%d" c
  | O_affine { pos; fmt; _ } -> Fmt.pf ppf "%a(%a)" Dist.pp fmt Affine.pp pos
  | O_unknown -> Fmt.string ppf "?"

let pp_spec ppf (s : spec) =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ", ") pp_owner_dim) s

(** Symbolic owner of reference [base(subs)] (or scalar [base] with
    [subs = []]) in the context of enclosing loop [indices]. *)
let owner_spec (env : Layout.env) ~(indices : string list) (base : string)
    (subs : Ast.expr list) : spec =
  let l = Layout.layout_of env base in
  Array.map
    (function
      | Layout.Repl -> O_all
      | Layout.Fixed c -> O_fixed c
      | Layout.Mapped m -> (
          match List.nth_opt subs m.array_dim with
          | None -> O_unknown
          | Some sub -> (
              match Affine.of_subscript env.prog ~indices sub with
              | None -> O_unknown
              | Some a ->
                  let pos =
                    Affine.add (Affine.scale m.stride a)
                      (Affine.constant (m.offset - m.dim_lo))
                  in
                  if Affine.is_constant pos then
                    O_fixed
                      (Dist.owner_coord m.fmt ~nprocs:m.nprocs pos.Affine.const)
                  else O_affine { fmt = m.fmt; nprocs = m.nprocs; pos })))
    l.bindings

(** A spec that is replicated in every grid dimension — the "dummy
    replicated reference" of the paper (data needed by all processors). *)
let all_procs (env : Layout.env) : spec =
  Array.make (Grid.rank env.grid) O_all

(** Is the spec available on every processor? *)
let is_replicated_spec (s : spec) =
  Array.for_all (function O_all -> true | _ -> false) s

(** Is the data partitioned (owner varies with loop indices in some
    dimension)? *)
let is_partitioned_spec (s : spec) =
  Array.exists
    (function O_affine _ | O_unknown -> true | O_all | O_fixed _ -> false)
    s

(* ------------------------------------------------------------------ *)
(* Per-dimension relation between producer and consumer owners          *)
(* ------------------------------------------------------------------ *)

(** How the owner of a produced value relates to the owner of its
    consumer, along one grid dimension. *)
type dim_relation =
  | Same  (** provably the same coordinate for all iterations *)
  | Local  (** producer replicated along this dim: always available *)
  | Shift of int
      (** positions differ by a constant: nearest-neighbour style
          communication after vectorization *)
  | To_all  (** consumer needs it at all coordinates: broadcast *)
  | Irregular  (** anything else: general (gather/transpose-like) *)

(** Relation along one dimension from producer [p] to consumer [c]. *)
let rec relate_dim (p : owner_dim) (c : owner_dim) : dim_relation =
  match (p, c) with
  | O_all, _ -> Local
  | O_affine { nprocs = 1; _ }, _ -> Local
      (* a single processor along this dimension owns everything *)
  | _, O_all -> To_all
  | p, O_affine { nprocs = 1; _ } ->
      (* degenerate one-processor dimension: the consumer always lives at
         coordinate 0, so compare against that instead of giving up *)
      relate_dim p (O_fixed 0)
  | O_fixed a, O_fixed b -> if a = b then Same else Shift (b - a)
  | O_affine pa, O_affine ca ->
      if pa.fmt = ca.fmt && pa.nprocs = ca.nprocs then
        let d = Affine.sub ca.pos pa.pos in
        if Affine.is_constant d then
          if d.Affine.const = 0 then Same
          else
            (* constant position difference: for BLOCK this is a shift of
               at most |d|/bsize+1 coords; we report the position delta *)
            Shift d.Affine.const
        else Irregular
      else Irregular
  | O_fixed _, O_affine _ | O_affine _, O_fixed _ -> Irregular
  | O_unknown, _ | _, O_unknown -> Irregular

(** Relations across all grid dimensions. *)
let relate (p : spec) (c : spec) : dim_relation array =
  Array.init (Array.length p) (fun g -> relate_dim p.(g) c.(g))

(** No communication needed: along every dimension the producer's value is
    already where the consumer runs. *)
let no_comm (rels : dim_relation array) : bool =
  Array.for_all (function Same | Local -> true | _ -> false) rels

(* ------------------------------------------------------------------ *)
(* Concrete ownership (runtime / simulator)                             *)
(* ------------------------------------------------------------------ *)

(** Concrete per-dimension coordinate set for one element. *)
type concrete_dim = C_all | C_one of int

(** Owner of the element of [base] at (Fortran) index vector [idx]. *)
let owner_of_element (env : Layout.env) (base : string) (idx : int array) :
    concrete_dim array =
  let l = Layout.layout_of env base in
  Array.map
    (function
      | Layout.Repl -> C_all
      | Layout.Fixed c -> C_one c
      | Layout.Mapped m ->
          let i = idx.(m.array_dim) in
          let pos = (m.stride * i) + m.offset - m.dim_lo in
          C_one (Dist.owner_coord m.fmt ~nprocs:m.nprocs pos))
    l.bindings

(** Linear processor ids owning the element (cartesian product over
    dimensions). *)
let owner_pids (env : Layout.env) (base : string) (idx : int array) :
    int list =
  let dims = owner_of_element env base idx in
  let grid = env.grid in
  let rec expand g (coord : int list) =
    if g = Array.length dims then
      [ Grid.linearize grid (Array.of_list (List.rev coord)) ]
    else
      match dims.(g) with
      | C_one c -> expand (g + 1) (c :: coord)
      | C_all ->
          List.concat
            (List.init (Grid.extent grid g) (fun c ->
                 expand (g + 1) (c :: coord)))
  in
  expand 0 []

(* ------------------------------------------------------------------ *)
(* Closed-form owned index intervals                                    *)
(* ------------------------------------------------------------------ *)

(** Closed-form description of the array indices a coordinate owns along
    one [Layout.Mapped] binding: the position-space span of the
    distribution format, pulled back through the (unit-stride) alignment
    map [pos = istride * i + shift]. *)
type interval = {
  ilo : int;
  ihi : int;  (** index bounds of the array dimension *)
  shift : int;
  istride : int;  (** +1 or -1; [pos = istride * i + shift] *)
  pspan : Dist.span;  (** owned positions, all [>= pspan.start] *)
  pos_min : int;
  pos_max : int;  (** position range reached by [ilo..ihi] *)
}

(** Owned index interval of [coord] along binding [b] over the array
    dimension [bounds].  [None] when no closed form applies — replicated
    or pinned bindings, non-unit alignment strides, or alignments that
    reach negative positions — and the caller falls back to per-element
    {!Dist.owner_coord}. *)
let owned_interval (b : Layout.binding) ~(bounds : Types.bounds)
    ~(coord : int) : interval option =
  match b with
  | Layout.Repl | Layout.Fixed _ -> None
  | Layout.Mapped m ->
      if abs m.stride <> 1 then None
      else begin
        let shift = m.offset - m.dim_lo in
        let p_at i = (m.stride * i) + shift in
        let plo = p_at bounds.Types.lo and phi = p_at bounds.Types.hi in
        let pos_min = min plo phi and pos_max = max plo phi in
        if pos_min < 0 || pos_max < pos_min then None
        else
          let pspan =
            Dist.owner_span m.fmt ~nprocs:m.nprocs ~extent:(pos_max + 1)
              coord
          in
          Some
            {
              ilo = bounds.Types.lo;
              ihi = bounds.Types.hi;
              shift;
              istride = m.stride;
              pspan;
              pos_min;
              pos_max;
            }
      end

(** Number of indices in the interval (closed form). *)
let interval_count (iv : interval) : int =
  Dist.span_count iv.pspan ~extent:(iv.pos_max + 1)
  - Dist.span_count iv.pspan ~extent:iv.pos_min

(** Does the interval contain array index [i]? *)
let interval_mem (iv : interval) (i : int) : bool =
  i >= iv.ilo && i <= iv.ihi
  &&
  let pos = (iv.istride * i) + iv.shift in
  pos >= iv.pspan.Dist.start
  && (pos - iv.pspan.Dist.start) mod iv.pspan.Dist.stride
     < iv.pspan.Dist.block

(** Iterate the owned array indices (ascending in position space). *)
let interval_iter (iv : interval) (f : int -> unit) : unit =
  Dist.span_iter iv.pspan ~extent:(iv.pos_max + 1) (fun pos ->
      if pos >= iv.pos_min then f (iv.istride * (pos - iv.shift)))

(** Does processor [pid] own the element? *)
let owns (env : Layout.env) (base : string) (idx : int array) (pid : int) :
    bool =
  let dims = owner_of_element env base idx in
  let coord = Grid.coords env.grid pid in
  let ok = ref true in
  Array.iteri
    (fun g d ->
      match d with
      | C_all -> ()
      | C_one c -> if coord.(g) <> c then ok := false)
    dims;
  !ok
