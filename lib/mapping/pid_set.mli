(** Closed-form processor sets over a grid: a rectangle (per dimension a
    fixed coordinate or the whole axis) or an explicit sorted pid list.
    Counting is O(rank) closed-form, membership is O(rank), and
    iteration yields ascending linear ids — the same order as the legacy
    cartesian expansion in {!Ownership.owner_pids}. *)

type dim = D_one of int | D_all

type t =
  | Rect of { grid : Grid.t; dims : dim array }
  | Explicit of { grid : Grid.t; pids : int list }  (** sorted ascending *)

val grid : t -> Grid.t

(** The whole machine. *)
val all : Grid.t -> t

val of_dims : Grid.t -> dim array -> t

(** Explicit set from an arbitrary pid list (deduplicated, sorted). *)
val of_list : Grid.t -> int list -> t

(** Cardinality, closed form for rectangles. *)
val count : t -> int

val is_empty : t -> bool
val is_all : t -> bool

(** Smallest linear pid (head of the legacy expansion); [None] only for
    an empty explicit set. *)
val first : t -> int option

val mem : t -> int -> bool

(** Iterate pids in ascending linear-id order. *)
val iter : (int -> unit) -> t -> unit

val to_list : t -> int list
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** Set union; all-absorbing, otherwise explicit sorted merge. *)
val union : t -> t -> t

val pp : Format.formatter -> t -> unit
