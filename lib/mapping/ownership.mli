(** Ownership of references: who holds an array element or scalar.

    Compile-time view: {!owner_spec} gives, per grid dimension, the owner
    coordinate as an affine position pushed through a distribution
    format; {!relate} compares producer and consumer owners and drives
    communication classification.  Runtime view: {!owner_pids} resolves
    concrete elements for the simulator. *)

open Hpf_lang
open Hpf_analysis

(** Per-grid-dimension symbolic owner. *)
type owner_dim =
  | O_all  (** replicated: available at every coordinate *)
  | O_fixed of int
  | O_affine of {
      fmt : Dist.format;
      nprocs : int;
      pos : Affine.t;  (** 0-based position; coord = owner_coord fmt pos *)
    }
  | O_unknown  (** non-affine subscript *)

type spec = owner_dim array

val pp_owner_dim : Format.formatter -> owner_dim -> unit
val pp_spec : Format.formatter -> spec -> unit

(** Symbolic owner of [base(subs)] (scalar when [subs = []]) in the
    context of the enclosing loop [indices]. *)
val owner_spec :
  Layout.env -> indices:string list -> string -> Ast.expr list -> spec

(** The paper's "dummy replicated reference": available everywhere. *)
val all_procs : Layout.env -> spec

val is_replicated_spec : spec -> bool
val is_partitioned_spec : spec -> bool

(** Producer-to-consumer owner relation along one grid dimension. *)
type dim_relation =
  | Same  (** provably the same coordinate for every iteration *)
  | Local  (** producer replicated (or a 1-processor dimension) *)
  | Shift of int  (** positions differ by a constant *)
  | To_all  (** consumer needs it at all coordinates *)
  | Irregular  (** anything else *)

val relate_dim : owner_dim -> owner_dim -> dim_relation
val relate : spec -> spec -> dim_relation array

(** The producer's value is already wherever the consumer runs. *)
val no_comm : dim_relation array -> bool

(** Concrete per-dimension coordinate set for one element. *)
type concrete_dim = C_all | C_one of int

(** Owner coordinates of the element of [base] at (Fortran) index
    vector [idx]. *)
val owner_of_element :
  Layout.env -> string -> int array -> concrete_dim array

(** Linear processor ids owning the element. *)
val owner_pids : Layout.env -> string -> int array -> int list

(** Closed-form owned index interval along one [Layout.Mapped] binding:
    the distribution format's position-space span pulled back through a
    unit-stride alignment map [pos = istride * i + shift]. *)
type interval = {
  ilo : int;
  ihi : int;  (** index bounds of the array dimension *)
  shift : int;
  istride : int;  (** +1 or -1 *)
  pspan : Dist.span;  (** owned positions, all [>= pspan.start] *)
  pos_min : int;
  pos_max : int;
}

(** Owned indices of [coord] along a binding over an array dimension;
    [None] when no closed form applies (replicated/pinned bindings,
    non-unit strides, negative positions) — fall back to per-element
    {!Dist.owner_coord}. *)
val owned_interval :
  Layout.binding -> bounds:Types.bounds -> coord:int -> interval option

(** Closed-form cardinality. *)
val interval_count : interval -> int

(** O(1) membership of an array index. *)
val interval_mem : interval -> int -> bool

(** Iterate owned indices (ascending in position space). *)
val interval_iter : interval -> (int -> unit) -> unit

(** Does processor [pid] own the element? *)
val owns : Layout.env -> string -> int array -> int -> bool
