(** Resolution of HPF mapping directives into per-array layouts.

    A {e layout} states, for each processor-grid dimension, how an
    array's elements choose their coordinate along that dimension:
    replicated, pinned to a fixed coordinate, or mapped through a
    distribution format applied to an affine function of one array
    subscript.  Alignment chains ([ALIGN B WITH A], [A] itself aligned or
    distributed) are composed into a single such description. *)

open Hpf_lang

type binding =
  | Repl  (** present at every coordinate along this grid dimension *)
  | Fixed of int  (** single fixed coordinate *)
  | Mapped of {
      array_dim : int;  (** which subscript position selects the coord *)
      fmt : Dist.format;
      stride : int;
      offset : int;  (** position = stride * index + offset - dim_lo *)
      dim_lo : int;  (** lower bound of the ultimate target dimension *)
      nprocs : int;
    }

type t = { grid : Grid.t; bindings : binding array }

(** Fully replicated layout (the default for scalars and unmapped
    arrays). *)
let replicated (grid : Grid.t) : t =
  { grid; bindings = Array.make (Grid.rank grid) Repl }

let is_fully_replicated (l : t) =
  Array.for_all (function Repl -> true | Fixed _ | Mapped _ -> false) l.bindings

(** Is the array partitioned (mapped along at least one grid dim)? *)
let is_partitioned (l : t) =
  Array.exists (function Mapped _ -> true | Repl | Fixed _ -> false) l.bindings

(** Grid dimensions along which the layout is [Mapped]. *)
let mapped_dims (l : t) : int list =
  Array.to_list l.bindings
  |> List.mapi (fun g b -> (g, b))
  |> List.filter_map (function g, Mapped _ -> Some g | _ -> None)

let pp_binding ppf = function
  | Repl -> Fmt.string ppf "*"
  | Fixed c -> Fmt.pf ppf "@%d" c
  | Mapped { array_dim; fmt; stride; offset; _ } ->
      if stride = 1 && offset = 0 then
        Fmt.pf ppf "dim%d:%a" array_dim Dist.pp fmt
      else
        Fmt.pf ppf "dim%d*%d%+d:%a" array_dim stride offset Dist.pp fmt

let pp ppf (l : t) =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ", ") pp_binding) l.bindings

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

type env = {
  prog : Ast.program;
  grid : Grid.t;
  layouts : (string, t) Hashtbl.t;
}

(* Mapping/layout errors carry code E0401 (inconsistent directives) or
   E0402 (invalid processor grid extents) and are raised as Diag.Fatal,
   caught at pass boundaries by the pipeline. *)
let merr ?(code = "E0401") fmt =
  Fmt.kstr (fun s -> raise (Diag.Fatal [ Diag.error ~code s ])) fmt

let layout_of (env : env) (name : string) : t =
  match Hashtbl.find_opt env.layouts name with
  | Some l -> l
  | None -> replicated env.grid

(** The declared grid of a program, if any ([grid_override] replaces its
    extents, e.g. to sweep the processor count in an experiment). *)
let declared_grid ?(grid_override : int list option) (prog : Ast.program) :
    Grid.t option =
  (match grid_override with
  | Some ext when List.exists (fun n -> n < 1) ext ->
      merr ~code:"E0402" "invalid processor grid extents [%s]"
        (String.concat ", " (List.map string_of_int ext))
  | _ -> ());
  let found =
    List.find_map
      (function
        | Ast.Processors { grid; extents } ->
            let ext =
              List.map
                (fun e ->
                  match Ast.const_int_opt prog e with
                  | Some n -> n
                  | None -> merr "non-constant processors extent")
                extents
            in
            Some (grid, ext)
        | Ast.Distribute _ | Ast.Align _ -> None)
      prog.directives
  in
  match (found, grid_override) with
  | Some (name, _), Some ov -> Some (Grid.make ~name ov)
  | Some (name, ext), None -> Some (Grid.make ~name ext)
  | None, Some ov -> Some (Grid.make ov)
  | None, None -> None

let shape_of (prog : Ast.program) (name : string) : Types.shape =
  match Ast.find_decl prog name with
  | Some d -> d.shape
  | None -> merr "no declaration for %s" name

(* Layout from a DISTRIBUTE directive. *)
let distribute_layout (prog : Ast.program) (grid : Grid.t) (array : string)
    (fmts : Ast.dist_format list) : t =
  let shape = shape_of prog array in
  if List.length fmts <> Types.rank shape then
    merr "distribute %s: rank mismatch" array;
  let bindings = Array.make (Grid.rank grid) Repl in
  let gdim = ref 0 in
  List.iteri
    (fun d fmt ->
      match fmt with
      | Ast.Star -> ()
      | _ ->
          if !gdim >= Grid.rank grid then
            merr "distribute %s: more mapped dims than grid rank" array;
          let b : Types.bounds = List.nth shape d in
          let nprocs = Grid.extent grid !gdim in
          let dfmt =
            match Dist.of_ast_format ~extent:(Types.extent b) ~nprocs fmt with
            | Some f -> f
            | None -> assert false
          in
          bindings.(!gdim) <-
            Mapped
              {
                array_dim = d;
                fmt = dfmt;
                stride = 1;
                offset = 0;
                dim_lo = b.Types.lo;
                nprocs;
              };
          incr gdim)
    fmts;
  { grid; bindings }

(* Compose an alignee's layout from its target's layout and the ALIGN
   subscripts. *)
let align_layout (target_layout : t) (subs : Ast.align_sub list) : t =
  let bindings =
    Array.map
      (function
        | Repl -> Repl
        | Fixed c -> Fixed c
        | Mapped m -> (
            match List.nth_opt subs m.array_dim with
            | None -> Repl
            | Some (Ast.A_dim { dum; stride; offset }) ->
                Mapped
                  {
                    m with
                    array_dim = dum;
                    stride = m.stride * stride;
                    offset = (m.stride * offset) + m.offset;
                  }
            | Some (Ast.A_const c) ->
                let pos = (m.stride * c) + m.offset - m.dim_lo in
                Fixed (Dist.owner_coord m.fmt ~nprocs:m.nprocs pos)
            | Some Ast.A_star -> Repl))
      target_layout.bindings
  in
  { grid = target_layout.grid; bindings }

(** Resolve every directive of [prog] into an environment.  [grid]
    supplies or overrides the processor arrangement (mandatory when the
    program declares none but distributes arrays). *)
let resolve ?grid_override (prog : Ast.program) : env =
  let grid =
    match declared_grid ?grid_override prog with
    | Some g -> g
    | None -> Grid.make [ 1 ]
  in
  let env = { prog; grid; layouts = Hashtbl.create 16 } in
  (* distributes first *)
  List.iter
    (function
      | Ast.Distribute { array; fmts; onto = _ } ->
          Hashtbl.replace env.layouts array
            (distribute_layout prog grid array fmts)
      | Ast.Processors _ | Ast.Align _ -> ())
    prog.directives;
  (* align chains: iterate until fixpoint (chains are acyclic per HPF) *)
  let aligns =
    List.filter_map
      (function
        | Ast.Align { alignee; target; subs } -> Some (alignee, target, subs)
        | Ast.Processors _ | Ast.Distribute _ -> None)
      prog.directives
  in
  let pending = ref aligns in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    pending :=
      List.filter
        (fun (alignee, target, subs) ->
          let target_resolved =
            Hashtbl.mem env.layouts target
            || not
                 (List.exists (fun (a, _, _) -> String.equal a target) aligns)
          in
          if target_resolved then begin
            let tl = layout_of env target in
            Hashtbl.replace env.layouts alignee (align_layout tl subs);
            progress := true;
            false
          end
          else true)
        !pending
  done;
  if !pending <> [] then merr "cyclic ALIGN chain";
  env

(* ------------------------------------------------------------------ *)
(* Per-processor memory footprint                                      *)
(* ------------------------------------------------------------------ *)

(** Number of elements of [name] stored by the processor at [coords]
    under its resolved layout: mapped dimensions contribute their local
    counts, collapsed and replicated dimensions their full extents. *)
let local_elems (env : env) (name : string) (coords : int array) : int =
  match Ast.find_decl env.prog name with
  | None -> 0
  | Some d when d.Ast.shape = [] -> 1
  | Some d ->
      let l = layout_of env name in
      (* local count of one array dimension: the Mapped binding dividing
         it, or the full extent when none does *)
      let local_of_dim (ad : int) (extent : int) : int =
        let found = ref None in
        Array.iteri
          (fun g b ->
            match b with
            | Mapped m when m.array_dim = ad && !found = None ->
                found :=
                  Some
                    (Dist.local_count m.fmt ~nprocs:m.nprocs ~extent
                       coords.(g))
            | _ -> ())
          l.bindings;
        match !found with Some n -> max 1 n | None -> extent
      in
      List.fold_left
        (fun acc (i, bounds) -> acc * local_of_dim i (Types.extent bounds))
        1
        (List.mapi (fun i b -> (i, b)) d.Ast.shape)

(** Per-processor memory footprint in elements: the maximum over
    processors of the sum of local element counts of every declared
    variable. *)
let max_local_elems (env : env) : int =
  let pids = List.init (Grid.size env.grid) Fun.id in
  List.fold_left
    (fun acc pid ->
      let coords = Grid.coords env.grid pid in
      let total =
        List.fold_left
          (fun t (d : Ast.decl) -> t + local_elems env d.Ast.dname coords)
          0 env.prog.Ast.decls
      in
      max acc total)
    0 pids
