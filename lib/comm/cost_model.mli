(** Communication and computation cost model, calibrated to the paper's
    platform (IBM SP2 thin nodes, user-space MPL, 1995-97 era).

    Point-to-point messages follow [alpha + beta * bytes]; collectives pay
    a [log2 p] factor.  The constants only set the scale — the
    reproduction targets relative behaviour, which depends on the
    latency-to-flop ratio (about three orders of magnitude on the SP2). *)

(** Interconnect shape: [Flat] (every pair one hop, full bisection — the
    legacy model, bit-identical costs), [Fat_tree] (per-hop latency up
    and down a [radix]-ary tree, full bisection), [Torus2d] (Manhattan
    hop distances, bisection contention on congesting collectives,
    one-hop nearest-neighbour shifts). *)
type topology = Flat | Fat_tree of { radix : int } | Torus2d

type t = {
  alpha : float;  (** message startup latency, seconds *)
  beta : float;  (** per-byte transfer time, seconds *)
  flop : float;  (** time per floating-point operation, seconds *)
  elem_bytes : int;  (** bytes per array element (REAL*8) *)
  copy : float;  (** per-element pack/unpack cost, seconds *)
  topology : topology;
  hop_latency : float;  (** per-link latency beyond the first hop *)
}

(** IBM SP2 thin node: ~40 us latency, ~35 MB/s bandwidth, ~25 Mflop/s
    sustained. *)
val sp2 : t

(** An idealized free network — ablation benches use it to show the
    mapping choice only matters when communication costs are real. *)
val zero_latency : t

(** [log2i p] = ceil(log2 p), 0 for p <= 1. *)
val log2i : int -> int

val with_topology : t -> topology -> t
val pp_topology : Format.formatter -> topology -> unit

(** Parse "flat", "fat-tree[:radix]" or "torus". *)
val topology_of_string : string -> (topology, string) result

(** Expected hop count of a message among [p] processors. *)
val avg_hops : t -> p:int -> float

(** Bandwidth contention factor for congesting collectives (1 on
    full-bisection networks). *)
val contention : t -> p:int -> float

(** One point-to-point message of [elems] elements over a single link
    (the exact legacy model on every topology). *)
val ptp : t -> elems:int -> float

(** Point-to-point across a [p]-processor machine: pays the topology's
    expected hop distance beyond the first link. *)
val ptp_among : t -> p:int -> elems:int -> float

(** One-to-all broadcast among [p] processors (binomial tree). *)
val bcast : t -> p:int -> elems:int -> float

(** Combining reduction among [p] processors. *)
val reduce : t -> p:int -> elems:int -> float

(** Collective nearest-neighbour shift (all pairs exchange in parallel). *)
val shift : t -> elems:int -> float

(** All-to-all transpose of [total_elems] spread over [p] processors. *)
val transpose : t -> p:int -> total_elems:int -> float

(** Arithmetic time for [flops] floating-point operations. *)
val compute : t -> flops:int -> float
