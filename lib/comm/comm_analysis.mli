(** Whole-program communication analysis: every read reference's owner is
    compared with its consumer's (both supplied by an {!oracle}, so the
    privatization decisions of [Phpf_core] are reflected), the
    communication is classified and placed by {!Vectorize}, and
    recognized reductions emit their combining collective. *)

open Hpf_lang
open Hpf_analysis
open Hpf_mapping

(** Where a reference's value is needed. *)
type consumer = {
  cref : Aref.t option;
      (** the consumer reference; [None] = the dummy replicated
          reference (needed by all processors) *)
  spec : Ownership.spec;
}

type oracle = {
  owner_of : Aref.t -> Ownership.spec;
      (** owner of a reference's data under the privatized mappings *)
  stmt_refs : Ast.stmt -> (Aref.t * consumer) list;
      (** the read references of a statement requiring analysis, with
          their consumers (paper Fig. 2 rules applied by the caller) *)
}

(** Classify producer → consumer movement (None = no communication). *)
val classify :
  producer:Ownership.spec ->
  consumer:Ownership.spec ->
  Ownership.dim_relation array ->
  Comm.kind option

(** Communication required to bring one reference to its consumer. *)
val comm_for_ref :
  Ast.program -> Nest.t -> oracle -> Aref.t -> consumer -> Comm.t option

(** Analyze the whole program.  [red_group] gives the processor count a
    reduction's combine spans (1 suppresses the collective; the default
    0 means "the whole machine").  [elide_unwritten] (default false)
    skips movement of never-assigned bases: initial data is seeded
    identically on every processor, so such copies can never diverge and
    broadcasting them re-delivers what every destination already holds
    (the fig1 [W0607] pattern at its source). *)
val analyze :
  Ast.program ->
  Nest.t ->
  oracle ->
  ?reductions:Reduction.red list ->
  ?red_group:(Reduction.red -> int) ->
  ?elide_unwritten:bool ->
  unit ->
  Comm.t list

(** Communications still sitting at or inside the given loop level. *)
val inner_loop_comms : Comm.t list -> level:int -> Comm.t list
