(** Communication descriptors produced by {!Comm_analysis}. *)

open Hpf_analysis

type kind =
  | Shift of int
      (** producer and consumer positions differ by a constant: collective
          nearest-neighbour style exchange after vectorization *)
  | Broadcast  (** value needed by all processors (along some grid dims) *)
  | Reduce  (** combining communication of a recognized reduction *)
  | Point_to_point
      (** value moves to a single (possibly varying) owner *)
  | Gather  (** irregular many-to-one/many: the expensive fallback *)

let pp_kind ppf = function
  | Shift d -> Fmt.pf ppf "shift(%+d)" d
  | Broadcast -> Fmt.string ppf "broadcast"
  | Reduce -> Fmt.string ppf "reduce"
  | Point_to_point -> Fmt.string ppf "ptp"
  | Gather -> Fmt.string ppf "gather"

type t = {
  data : Aref.t;  (** the communicated reference *)
  kind : kind;
  stmt_level : int;  (** nesting level of the statement *)
  placement_level : int;
      (** loop level the communication is placed just inside;
          [0] = hoisted outside all loops.  [placement_level < stmt_level]
          means the messages were vectorized. *)
  elems_per_instance : int;
      (** elements moved each time the communication executes *)
  instances : int;  (** how many times the communication executes *)
  group : int option;
      (** participant count for collectives when narrower than the whole
          machine (e.g. a reduction spanning one grid dimension) *)
  agg_vars : string list;
      (** loop-index variables over which the vectorized message actually
          aggregates elements.  For a [Shift] this {e excludes} the index
          driving the shifted dimension: only the boundary overlap
          crosses processors. *)
  scale : int;
      (** extra per-instance element multiplier (a shift of |δ| positions
          moves |δ| boundary planes) *)
  boundary_fraction : float;
      (** for a [Shift] that could {e not} be vectorized past the loop
          driving the shifted dimension: the fraction of iterations whose
          producer and consumer actually sit on different processors
          (|δ| / block size under BLOCK; 1 under CYCLIC) *)
}

let vectorized (c : t) = c.placement_level < c.stmt_level

let for_ref (cs : t list) (r : Aref.t) =
  List.filter (fun c -> Aref.equal c.data r) cs

let total_elems (c : t) = c.elems_per_instance * c.instances

let pp ppf (c : t) =
  Fmt.pf ppf "%a %a at level %d/%d (%d x %d elems)%s" pp_kind c.kind Aref.pp
    c.data c.placement_level c.stmt_level c.instances c.elems_per_instance
    (if vectorized c then " [vectorized]" else "")

(* ------------------------------------------------------------------ *)
(* Canonical signatures                                                *)
(* ------------------------------------------------------------------ *)

(** Canonical one-line rendering of a descriptor: every field, fixed
    field order, locale-independent formatting.  Two descriptors render
    equal iff they are structurally equal, so the signature is safe to
    hash and to compare across processes. *)
let signature (c : t) : string =
  Fmt.str "%a|%a|sl=%d|pl=%d|e=%d|i=%d|g=%s|agg=%s|sc=%d|bf=%h" pp_kind
    c.kind Aref.pp c.data c.stmt_level c.placement_level
    c.elems_per_instance c.instances
    (match c.group with None -> "-" | Some g -> string_of_int g)
    (String.concat "," c.agg_vars)
    c.scale c.boundary_fraction

(** Content digest of a whole schedule, order-sensitive (schedule order
    is part of the compiler's deterministic output).  Equal digests ⇔
    structurally equal schedules; used by the serve determinism checks
    and the bench replay harness. *)
let schedule_digest (cs : t list) : string =
  Digest.to_hex
    (Digest.string (String.concat "\x00" (List.map signature cs)))

(** Estimated cost of one communication descriptor under a machine
    model. *)
let cost (m : Cost_model.t) ~(nprocs : int) (c : t) : float =
  let nprocs = match c.group with Some g -> g | None -> nprocs in
  let effective_instances =
    float_of_int c.instances *. c.boundary_fraction
  in
  let per_instance =
    match c.kind with
    | Shift _ -> Cost_model.shift m ~elems:c.elems_per_instance
    | Broadcast -> Cost_model.bcast m ~p:nprocs ~elems:c.elems_per_instance
    | Reduce -> Cost_model.reduce m ~p:nprocs ~elems:c.elems_per_instance
    | Point_to_point ->
        Cost_model.ptp_among m ~p:nprocs ~elems:c.elems_per_instance
    | Gather ->
        (* irregular: every processor may talk to every other, and the
           crossing traffic pays the topology's bisection contention *)
        float_of_int (max 1 (nprocs - 1))
        *. Cost_model.ptp_among m ~p:nprocs
             ~elems:(max 1 (c.elems_per_instance / max 1 nprocs))
        *. Cost_model.contention m ~p:nprocs
  in
  effective_instances *. per_instance

let total_cost (m : Cost_model.t) ~(nprocs : int) (cs : t list) : float =
  List.fold_left (fun acc c -> acc +. cost m ~nprocs c) 0.0 cs
