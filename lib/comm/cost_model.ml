(** Communication and computation cost model, calibrated to the paper's
    platform (IBM SP2 thin nodes, user-space MPL, 1995-97 era).

    Point-to-point messages follow the linear model [alpha + beta * bytes];
    collectives pay a [log2 p] factor.  Absolute constants only set the
    scale — the reproduction targets the {e relative} behaviour of the
    paper's tables, which depends on the ratio of message latency to
    per-element compute cost (about 3 orders of magnitude on the SP2,
    which is why replicated scalars are catastrophic). *)

type t = {
  alpha : float;  (** message startup latency, seconds *)
  beta : float;  (** per-byte transfer time, seconds *)
  flop : float;  (** time per floating-point operation, seconds *)
  elem_bytes : int;  (** bytes per array element (REAL*8) *)
  copy : float;  (** per-element pack/unpack cost, seconds *)
}

(** IBM SP2 thin node, user-space MPL: ~40 us latency, ~35 MB/s
    point-to-point bandwidth, ~25 Mflop/s sustained. *)
let sp2 : t =
  {
    alpha = 40e-6;
    beta = 1.0 /. 35e6;
    flop = 40e-9;
    elem_bytes = 8;
    copy = 60e-9;
  }

(** An idealized zero-latency network — used by ablation benches to show
    that the mapping choices only matter when latency is real. *)
let zero_latency : t = { sp2 with alpha = 0.0; beta = 0.0; copy = 0.0 }

(* ceil(log2 p), by integer doubling: float log rounding must not add a
   phantom tree stage at exact powers of two (log 1024 / log 2 can come
   out 10.000000000000002, whose ceiling is 11). *)
let log2i p =
  let rec go stages reach =
    if reach >= p then stages else go (stages + 1) (reach * 2)
  in
  if p <= 1 then 0 else go 0 1

(** Time for one point-to-point message of [elems] elements. *)
let ptp (m : t) ~(elems : int) : float =
  m.alpha
  +. (m.beta *. float_of_int (elems * m.elem_bytes))
  +. (m.copy *. float_of_int elems)

(** One-to-all broadcast of [elems] elements among [p] processors
    (binomial tree). *)
let bcast (m : t) ~(p : int) ~(elems : int) : float =
  float_of_int (log2i p) *. ptp m ~elems

(** Reduction (combine) of [elems] elements among [p] processors. *)
let reduce (m : t) ~(p : int) ~(elems : int) : float =
  float_of_int (log2i p) *. (ptp m ~elems +. (m.flop *. float_of_int elems))

(** Collective shift: every processor exchanges [elems] elements with a
    neighbour — one message time (they proceed in parallel). *)
let shift (m : t) ~(elems : int) : float = ptp m ~elems

(** All-to-all transpose of [total_elems] distributed over [p]
    processors. *)
let transpose (m : t) ~(p : int) ~(total_elems : int) : float =
  if p <= 1 then 0.0
  else
    let per_pair = total_elems / (p * p) in
    float_of_int (p - 1) *. ptp m ~elems:(max 1 per_pair)

(** Computation time for [n] floating-point operations. *)
let compute (m : t) ~(flops : int) : float = m.flop *. float_of_int flops
