(** Communication and computation cost model, calibrated to the paper's
    platform (IBM SP2 thin nodes, user-space MPL, 1995-97 era).

    Point-to-point messages follow the linear model [alpha + beta * bytes];
    collectives pay a [log2 p] factor.  Absolute constants only set the
    scale — the reproduction targets the {e relative} behaviour of the
    paper's tables, which depends on the ratio of message latency to
    per-element compute cost (about 3 orders of magnitude on the SP2,
    which is why replicated scalars are catastrophic). *)

(** Interconnect shape.  [Flat] is the classical model (every pair one
    hop, full bisection — the SP2 numbers were measured this way and
    stay bit-identical).  [Fat_tree] routes up and down a [radix]-ary
    tree, paying per-hop latency with full bisection bandwidth.
    [Torus2d] is a near-square 2D torus: messages pay Manhattan-distance
    hops and congesting collectives pay a bisection contention factor —
    but nearest-neighbour shifts stay one hop, which is exactly the
    regime where BLOCK mappings win. *)
type topology = Flat | Fat_tree of { radix : int } | Torus2d

type t = {
  alpha : float;  (** message startup latency, seconds *)
  beta : float;  (** per-byte transfer time, seconds *)
  flop : float;  (** time per floating-point operation, seconds *)
  elem_bytes : int;  (** bytes per array element (REAL*8) *)
  copy : float;  (** per-element pack/unpack cost, seconds *)
  topology : topology;
  hop_latency : float;  (** per-link switching latency beyond the first
                            hop, seconds ([Flat] never pays it) *)
}

(** IBM SP2 thin node, user-space MPL: ~40 us latency, ~35 MB/s
    point-to-point bandwidth, ~25 Mflop/s sustained. *)
let sp2 : t =
  {
    alpha = 40e-6;
    beta = 1.0 /. 35e6;
    flop = 40e-9;
    elem_bytes = 8;
    copy = 60e-9;
    topology = Flat;
    hop_latency = 0.5e-6;
  }

(** An idealized zero-latency network — used by ablation benches to show
    that the mapping choices only matter when latency is real. *)
let zero_latency : t =
  { sp2 with alpha = 0.0; beta = 0.0; copy = 0.0; hop_latency = 0.0 }

let with_topology (m : t) (topo : topology) : t = { m with topology = topo }

let pp_topology ppf = function
  | Flat -> Fmt.string ppf "flat"
  | Fat_tree { radix } -> Fmt.pf ppf "fat-tree:%d" radix
  | Torus2d -> Fmt.string ppf "torus"

let topology_of_string (s : string) : (topology, string) result =
  match String.lowercase_ascii (String.trim s) with
  | "flat" -> Ok Flat
  | "torus" | "torus2d" -> Ok Torus2d
  | "fat-tree" | "fattree" -> Ok (Fat_tree { radix = 4 })
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "fat-tree" || String.sub s 0 i = "fattree"
        -> (
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt arg with
          | Some r when r >= 2 -> Ok (Fat_tree { radix = r })
          | _ -> Error (Fmt.str "invalid fat-tree radix %S" arg))
      | _ ->
          Error
            (Fmt.str
               "unknown topology %S (expected flat, fat-tree[:radix] or \
                torus)"
               s))

(* ceil(log2 p), by integer doubling: float log rounding must not add a
   phantom tree stage at exact powers of two (log 1024 / log 2 can come
   out 10.000000000000002, whose ceiling is 11). *)
let log2i p =
  let rec go stages reach =
    if reach >= p then stages else go (stages + 1) (reach * 2)
  in
  if p <= 1 then 0 else go 0 1

(* Integer square root (floor), by Newton iteration on ints. *)
let isqrt n =
  if n <= 1 then max 0 n
  else begin
    let x = ref n and y = ref ((n + 1) / 2) in
    while !y < !x do
      x := !y;
      y := (!y + (n / !y)) / 2
    done;
    !x
  end

(* ceil(log_radix p) by integer powering. *)
let logri radix p =
  let rec go stages reach =
    if reach >= p then stages else go (stages + 1) (reach * radix)
  in
  if p <= 1 then 0 else go 0 1

(** Expected hop count of a point-to-point message among [p] processors.
    [Flat] is always one hop; a [radix]-ary fat tree routes up and back
    down ([2 * ceil(log_radix p)] links); a near-square 2D torus pays
    half the side in expected Manhattan distance. *)
let avg_hops (m : t) ~(p : int) : float =
  if p <= 1 then 1.0
  else
    match m.topology with
    | Flat -> 1.0
    | Fat_tree { radix } -> float_of_int (2 * max 1 (logri radix p))
    | Torus2d ->
        let side = max 1 (isqrt p) in
        Float.max 1.0 (float_of_int side /. 2.0)

(** Bandwidth contention factor paid by congesting collectives
    (transpose / gather): how many times over the bisection the
    all-to-all traffic is.  1 for full-bisection networks. *)
let contention (m : t) ~(p : int) : float =
  if p <= 1 then 1.0
  else
    match m.topology with
    | Flat | Fat_tree _ -> 1.0
    | Torus2d ->
        (* bisection of a side x side torus is 4*side links; all-to-all
           pushes ~p/2 flows each way across it *)
        let side = max 1 (isqrt p) in
        Float.max 1.0 (float_of_int p /. (8.0 *. float_of_int side))

(** Point-to-point message of [elems] elements across a [p]-processor
    machine: the topology charges its expected hop distance beyond the
    first link. *)
let ptp_among (m : t) ~(p : int) ~(elems : int) : float =
  m.alpha
  +. (m.hop_latency *. (avg_hops m ~p -. 1.0))
  +. (m.beta *. float_of_int (elems * m.elem_bytes))
  +. (m.copy *. float_of_int elems)

(** Time for one point-to-point message of [elems] elements over a
    single link (the exact legacy model on every topology). *)
let ptp (m : t) ~(elems : int) : float = ptp_among m ~p:1 ~elems

(** One-to-all broadcast of [elems] elements among [p] processors
    (binomial tree; each stage pays the topology's hop distance). *)
let bcast (m : t) ~(p : int) ~(elems : int) : float =
  float_of_int (log2i p) *. ptp_among m ~p ~elems

(** Reduction (combine) of [elems] elements among [p] processors. *)
let reduce (m : t) ~(p : int) ~(elems : int) : float =
  float_of_int (log2i p)
  *. (ptp_among m ~p ~elems +. (m.flop *. float_of_int elems))

(** Collective shift: every processor exchanges [elems] elements with a
    neighbour — one message time (they proceed in parallel).  On a torus
    the neighbour is one link away, so no hop surcharge applies on any
    topology: this is what keeps BLOCK stencils cheap at scale. *)
let shift (m : t) ~(elems : int) : float = ptp m ~elems

(** All-to-all transpose of [total_elems] distributed over [p]
    processors; pays the topology's bisection contention. *)
let transpose (m : t) ~(p : int) ~(total_elems : int) : float =
  if p <= 1 then 0.0
  else
    let per_pair = total_elems / (p * p) in
    float_of_int (p - 1)
    *. ptp_among m ~p ~elems:(max 1 per_pair)
    *. contention m ~p

(** Computation time for [n] floating-point operations. *)
let compute (m : t) ~(flops : int) : float = m.flop *. float_of_int flops
