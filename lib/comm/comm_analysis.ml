(** Whole-program communication analysis.

    Walks every statement and, for each read reference, compares the
    owner of the data with the owner of its consumer (both supplied by an
    {!oracle} so that the privatization decisions of {!Phpf_core} are
    reflected), classifies the communication, and places it with
    {!Vectorize}.

    Recognized reductions additionally emit a combining ([Reduce])
    collective placed just outside the accumulating loop. *)

open Hpf_lang
open Hpf_analysis
open Hpf_mapping

(** Where a reference's value is needed. *)
type consumer = {
  cref : Aref.t option;
      (** the consumer reference ([None] = the dummy replicated
          reference: the value is needed by all processors) *)
  spec : Ownership.spec;
}

type oracle = {
  owner_of : Aref.t -> Ownership.spec;
      (** owner of the data named by a reference, after privatized
          mapping decisions *)
  stmt_refs : Ast.stmt -> (Aref.t * consumer) list;
      (** the read references of a statement that require communication
          analysis, each with its consumer (paper Fig. 2 rules applied by
          the caller); references that need no analysis (loop indices,
          parameters) are omitted *)
}

(** Classify a communication from producer/consumer owner specs and their
    per-dimension relations. *)
let classify ~(producer : Ownership.spec) ~(consumer : Ownership.spec)
    (rels : Ownership.dim_relation array) : Comm.kind option =
  if Ownership.no_comm rels then None
  else begin
    let has p = Array.exists p rels in
    let unknown =
      Array.exists (function Ownership.O_unknown -> true | _ -> false)
    in
    if has (function Ownership.To_all -> true | _ -> false) then
      Some Comm.Broadcast
    else if
      Array.for_all
        (function
          | Ownership.Same | Ownership.Local | Ownership.Shift _ -> true
          | Ownership.To_all | Ownership.Irregular -> false)
        rels
    then begin
      let delta =
        Array.fold_left
          (fun acc r ->
            match r with Ownership.Shift d when acc = 0 -> d | _ -> acc)
          0 rels
      in
      Some (Comm.Shift delta)
    end
    else if unknown producer || unknown consumer then Some Comm.Gather
    else Some Comm.Point_to_point
  end

(** Communication (if any) required to bring [r]'s value to [consumer]. *)
let comm_for_ref (prog : Ast.program) (nest : Nest.t) (oracle : oracle)
    (r : Aref.t) (consumer : consumer) : Comm.t option =
  let p = oracle.owner_of r in
  let rels = Ownership.relate p consumer.spec in
  match classify ~producer:p ~consumer:consumer.spec rels with
  | None -> None
  | Some kind ->
      let consumer_subs =
        match consumer.cref with Some c -> c.Aref.subs | None -> []
      in
      let placement =
        Vectorize.placement_level prog nest ~data:r ~consumer_subs
      in
      let stmt_level = Nest.level nest r.Aref.sid in
      (* along a shifted dimension only the boundary overlap moves: the
         index variables driving Shift dimensions do not aggregate *)
      let exclude, scale, boundary_fraction =
        match kind with
        | Comm.Shift delta ->
            let vars = ref [] in
            (* crossing probability: a message fires when any shifted
               dimension crosses a processor boundary *)
            let stay = ref 1.0 in
            Array.iteri
              (fun g rel ->
                match (rel, p.(g)) with
                | Ownership.Shift d, Ownership.O_affine { pos; fmt; _ } ->
                    vars := Affine.vars pos @ !vars;
                    let f =
                      match fmt with
                      | Hpf_mapping.Dist.Block bsize when bsize > 0 ->
                          Float.min 1.0
                            (float_of_int (abs d) /. float_of_int bsize)
                      | Hpf_mapping.Dist.Cyclic
                      | Hpf_mapping.Dist.Block_cyclic _ ->
                          1.0
                      | Hpf_mapping.Dist.Block _ -> 1.0
                    in
                    stay := !stay *. (1.0 -. f)
                | _ -> ())
              rels;
            (!vars, max 1 (abs delta), 1.0 -. !stay)
        | _ -> ([], 1, 1.0)
      in
      let agg_vars = Vectorize.aggregation_vars ~data:r ~exclude in
      (* when the loops driving the shifted dimension are all crossed by
         vectorization, the boundary elements move unconditionally (the
         fraction applies only to per-iteration messages) *)
      let boundary_fraction =
        if
          exclude <> []
          && List.for_all
               (fun v -> Nest.index_level nest r.Aref.sid v > placement)
               exclude
        then 1.0
        else boundary_fraction
      in
      Some
        {
          Comm.data = r;
          kind;
          stmt_level;
          placement_level = placement;
          elems_per_instance =
            scale
            * Vectorize.elems_per_instance prog nest ~data:r ~vars:agg_vars
                ~placement;
          instances = Vectorize.instances prog nest ~data:r ~placement;
          group = None;
          agg_vars;
          scale;
          boundary_fraction;
        }

(** Bases ever assigned in the program.  Initial data is globally
    available (every per-processor memory is seeded identically), so a
    base outside this set can never diverge between processors: its
    consumers always hold a valid local copy and no movement is
    required, whatever the owner/consumer relation says. *)
let written_bases (prog : Ast.program) : (string, unit) Hashtbl.t =
  let w = Hashtbl.create 16 in
  Ast.iter_program
    (fun s ->
      match s.Ast.node with
      | Ast.Assign (Ast.LVar v, _) -> Hashtbl.replace w v ()
      | Ast.Assign (Ast.LArr (a, _), _) -> Hashtbl.replace w a ()
      | _ -> ())
    prog;
  w

(** Analyze the whole program.  [red_group] gives the number of
    processors a recognized reduction's combine spans (1 disables the
    collective: the partial result is already where it is needed).
    [elide_unwritten] skips movement of never-assigned bases (see
    {!written_bases}); off by default — it reproduces phpf's verbatim
    schedule for the paper-faithful compiler versions. *)
let analyze (prog : Ast.program) (nest : Nest.t) (oracle : oracle)
    ?(reductions : Reduction.red list = [])
    ?(red_group : Reduction.red -> int = fun _ -> 0)
    ?(elide_unwritten = false) () : Comm.t list =
  let written = if elide_unwritten then written_bases prog else Hashtbl.create 0 in
  let moves (r : Aref.t) =
    (not elide_unwritten) || Hashtbl.mem written r.Aref.base
  in
  let out = ref [] in
  Ast.iter_program
    (fun s ->
      List.iter
        (fun (r, consumer) ->
          if moves r then
            match comm_for_ref prog nest oracle r consumer with
            | Some c -> out := c :: !out
            | None -> ())
        (oracle.stmt_refs s))
    prog;
  (* reduction collectives *)
  List.iter
    (fun (red : Reduction.red) ->
      let group = red_group red in
      if group <> 1 then begin
        let loop_level = Nest.level nest red.loop_sid in
        let data = Aref.scalar red.stmt_sid red.var in
        let instances =
          Trips.iterations_at_level prog nest ~sid:red.loop_sid loop_level
        in
        out :=
          {
            Comm.data;
            kind = Comm.Reduce;
            stmt_level = loop_level + 1;
            placement_level = loop_level;
            elems_per_instance = 1 + List.length red.loc_vars;
            instances;
            group = (if group = 0 then None else Some group);
            agg_vars = [];
            scale = 1 + List.length red.loc_vars;
            boundary_fraction = 1.0;
          }
          :: !out
      end)
    reductions;
  List.rev !out

(** Communications that remain inside the loop at [level] or deeper
    around their statement — the "inner-loop communication" the mapping
    algorithm vetoes. *)
let inner_loop_comms (comms : Comm.t list) ~(level : int) : Comm.t list =
  List.filter (fun (c : Comm.t) -> c.Comm.placement_level >= level) comms
