(** Communication descriptors produced by {!Comm_analysis}, and their
    cost under a machine model. *)

open Hpf_analysis

type kind =
  | Shift of int
      (** producer and consumer positions differ by a constant:
          nearest-neighbour exchange after vectorization *)
  | Broadcast  (** needed by all processors along some grid dims *)
  | Reduce  (** combining collective of a recognized reduction *)
  | Point_to_point  (** value moves to a single (varying) owner *)
  | Gather  (** irregular: the expensive fallback *)

val pp_kind : Format.formatter -> kind -> unit

type t = {
  data : Aref.t;  (** the communicated reference *)
  kind : kind;
  stmt_level : int;  (** nesting level of the statement *)
  placement_level : int;
      (** loop level the communication sits just inside; 0 = hoisted
          outside all loops; [< stmt_level] means vectorized *)
  elems_per_instance : int;  (** elements moved per execution *)
  instances : int;  (** executions (static estimate) *)
  group : int option;
      (** collective participant count when narrower than the machine *)
  agg_vars : string list;
      (** loop indices over which the message aggregates elements (for a
          [Shift], the driving index is excluded: only the boundary
          moves) *)
  scale : int;  (** per-instance multiplier (|δ| boundary planes) *)
  boundary_fraction : float;
      (** for a non-vectorized [Shift]: fraction of iterations whose
          producer and consumer differ (|δ|/block size; 1 under CYCLIC) *)
}

(** Was the communication hoisted past at least one loop? *)
val vectorized : t -> bool

(** All descriptors of the schedule moving exactly this reference
    ({!Hpf_analysis.Aref.equal} on [data]). *)
val for_ref : t list -> Aref.t -> t list

val total_elems : t -> int
val pp : Format.formatter -> t -> unit

(** Canonical one-line rendering: every field, fixed order,
    locale-independent ([%h] for floats).  Equal signatures iff
    structurally equal descriptors. *)
val signature : t -> string

(** Order-sensitive content digest (MD5 hex) of a schedule — equal
    digests iff structurally equal schedules.  The serve determinism
    checks and the bench replay harness compare these across runs. *)
val schedule_digest : t list -> string

(** Estimated cost of one descriptor. *)
val cost : Cost_model.t -> nprocs:int -> t -> float

val total_cost : Cost_model.t -> nprocs:int -> t list -> float
