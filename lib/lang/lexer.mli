(** Hand-written lexer for the kernel language.  Newlines are
    significant (statements are line-based); [!] comments run to end of
    line; [!hpf$] introduces a directive. *)

type token =
  | IDENT of string  (** lowercased *)
  | INT_LIT of int
  | REAL_LIT of float
  | TRUE
  | FALSE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | LPAREN
  | RPAREN
  | COMMA
  | ASSIGN
  | COLON
  | DOLLAR of int  (** [$k]: positional alignee dummy in ALIGN subs *)
  | HPF  (** start of a [!hpf$] directive *)
  | NEWLINE
  | EOF

val token_to_string : token -> string

type t

val create : ?file:string -> string -> t

(** Read the next token with its location.
    @raise Diag.Fatal (code [E0101]) on invalid input. *)
val next : t -> token * Loc.t

(** Lex the whole input (ends in [EOF]). *)
val tokenize : ?file:string -> string -> (token * Loc.t) list
