(** Abstract syntax for the HPF kernel language.

    The language is the subset of Fortran + HPF needed by the paper's
    analyses: assignments over affine array references, structured [DO]
    loops (optionally tagged [INDEPENDENT] with a [NEW] clause), structured
    [IF], restricted intra-loop control transfers ([EXIT] / [CYCLE], which
    model the paper's Fig. 7 gotos), and the HPF mapping directives
    [PROCESSORS] / [DISTRIBUTE] / [ALIGN].

    Statements carry a unique integer id ([sid]) used as the key by every
    analysis.  Construction-time ids come from a {e per-program} allocator
    ({!ids} / {!mk_in}); there is no global counter, so parsing and
    building programs is safe from concurrent domains.  Ids are
    re-assigned deterministically with {!renumber} (which {!Sema.check}
    and {!Builder.program} do), so compiled programs carry preorder ids
    [1..n] regardless of construction order. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not | Abs | Sqrt | Exp | Log | Sign

(** Intrinsic functions of two arguments. *)
type intrin2 = Min2 | Max2 | Mod2

type expr =
  | Int of int
  | Real of float
  | Bool of bool
  | Var of string  (** scalar (or loop-index / parameter) reference *)
  | Arr of string * expr list  (** array element reference *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Intrin of intrin2 * expr * expr

type lhs = LVar of string | LArr of string * expr list

type stmt_id = int

type stmt = {
  sid : stmt_id;
  node : stmt_node;
  loc : Loc.t option;
      (** source position when the statement came from the parser; [None]
          for programs built with {!Builder} or synthesized by rewrites *)
}

and stmt_node =
  | Assign of lhs * expr
  | If of expr * stmt list * stmt list
      (** [If (cond, then_branch, else_branch)] *)
  | Do of do_loop
  | Exit of string option
      (** terminate the (named) enclosing loop; a control transfer whose
          target lies {e outside} the loop body *)
  | Cycle of string option
      (** skip to the next iteration of the (named) enclosing loop; target
          stays {e inside} the loop body *)

and do_loop = {
  index : string;
  lo : expr;
  hi : expr;
  step : expr;
  body : stmt list;
  independent : bool;  (** [!HPF$ INDEPENDENT] asserted *)
  new_vars : string list;  (** [NEW(...)] clause of the directive *)
  loop_name : string option;
}

(** HPF distribution format for one dimension. *)
type dist_format =
  | Block
  | Cyclic
  | Block_cyclic of int
  | Star  (** collapsed: the whole dimension is local *)

(** One target-dimension component of an [ALIGN] directive.

    [ALIGN B(i1,...,ik) WITH A(c1,...,cm)] where each [cj] is either an
    affine use [stride * i_d + offset] of one alignee dummy, a constant, or
    ['*'] (the alignee is replicated along that target dimension). *)
type align_sub =
  | A_dim of { dum : int; stride : int; offset : int }
      (** [dum] is the 0-based alignee dimension index *)
  | A_const of int
  | A_star

type directive =
  | Processors of { grid : string; extents : expr list }
  | Distribute of { array : string; fmts : dist_format list; onto : string option }
  | Align of { alignee : string; target : string; subs : align_sub list }

type decl = {
  dname : string;
  ty : Types.elt_type;
  shape : Types.shape;  (** [[]] for scalars *)
}

type program = {
  pname : string;
  params : (string * int) list;
      (** compile-time integer parameters, usable in bounds/extents *)
  decls : decl list;
  directives : directive list;
  body : stmt list;
}

(* ------------------------------------------------------------------ *)
(* Statement id management                                             *)
(* ------------------------------------------------------------------ *)

(** Per-program statement-id allocator.  Each parse / build owns one, so
    two compiles never race on shared state and the same source always
    yields the same construction-time ids. *)
type ids = { mutable next_sid : int }

let ids () = { next_sid = 0 }

let fresh_sid (t : ids) =
  t.next_sid <- t.next_sid + 1;
  t.next_sid

(** Build an unnumbered statement ([sid = 0]).  Callers that need unique
    construction-time ids use {!mk_in}; everyone else relies on
    {!renumber} assigning the final preorder ids. *)
let mk ?loc node = { sid = 0; node; loc }

(** Build a statement numbered from the given per-program allocator. *)
let mk_in (t : ids) ?loc node = { sid = fresh_sid t; node; loc }

(** Reassign statement ids in deterministic preorder (1, 2, 3, ...).
    Run by {!Sema.check} so that analyses and tests see stable ids
    regardless of construction order. *)
let renumber (p : program) : program =
  let next = ref 0 in
  let rec stmt s =
    incr next;
    let sid = !next in
    let node =
      match s.node with
      | Assign _ | Exit _ | Cycle _ -> s.node
      | If (c, t, e) -> If (c, List.map stmt t, List.map stmt e)
      | Do d -> Do { d with body = List.map stmt d.body }
    in
    { s with sid; node }
  in
  { p with body = List.map stmt p.body }

(* ------------------------------------------------------------------ *)
(* Generic traversals                                                  *)
(* ------------------------------------------------------------------ *)

let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s.node with
      | Assign _ | Exit _ | Cycle _ -> ()
      | If (_, t, e) ->
          iter_stmts f t;
          iter_stmts f e
      | Do d -> iter_stmts f d.body)
    stmts

let iter_program f (p : program) = iter_stmts f p.body

(** All statements of [p] in preorder. *)
let all_stmts (p : program) : stmt list =
  let acc = ref [] in
  iter_program (fun s -> acc := s :: !acc) p;
  List.rev !acc

let find_stmt (p : program) (sid : stmt_id) : stmt option =
  let found = ref None in
  iter_program (fun s -> if s.sid = sid then found := Some s) p;
  !found

(** Fold over every expression appearing in a statement's own node (not in
    nested statements): the rhs and lhs subscripts of assignments, the
    condition of [If], the bounds of [Do]. *)
let own_exprs (s : stmt) : expr list =
  match s.node with
  | Assign (LVar _, rhs) -> [ rhs ]
  | Assign (LArr (_, subs), rhs) -> subs @ [ rhs ]
  | If (c, _, _) -> [ c ]
  | Do d -> [ d.lo; d.hi; d.step ]
  | Exit _ | Cycle _ -> []

let rec iter_expr f (e : expr) =
  f e;
  match e with
  | Int _ | Real _ | Bool _ | Var _ -> ()
  | Arr (_, subs) -> List.iter (iter_expr f) subs
  | Bin (_, a, b) | Intrin (_, a, b) ->
      iter_expr f a;
      iter_expr f b
  | Un (_, a) -> iter_expr f a

(** Variables read by an expression (array bases included, with duplicates
    removed, in first-occurrence order). *)
let expr_vars (e : expr) : string list =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  iter_expr
    (function Var v -> add v | Arr (a, _) -> add a | _ -> ())
    e;
  List.rev !acc

let rec equal_expr (a : expr) (b : expr) =
  match (a, b) with
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> x = y
  | Var x, Var y -> String.equal x y
  | Arr (x, xs), Arr (y, ys) ->
      String.equal x y
      && List.length xs = List.length ys
      && List.for_all2 equal_expr xs ys
  | Bin (o, x1, x2), Bin (o', y1, y2) ->
      o = o' && equal_expr x1 y1 && equal_expr x2 y2
  | Un (o, x), Un (o', y) -> o = o' && equal_expr x y
  | Intrin (o, x1, x2), Intrin (o', y1, y2) ->
      o = o' && equal_expr x1 y1 && equal_expr x2 y2
  | ( ( Int _ | Real _ | Bool _ | Var _ | Arr _ | Bin _ | Un _
      | Intrin _ ),
      _ ) ->
      false

(* ------------------------------------------------------------------ *)
(* Declarations lookup helpers                                         *)
(* ------------------------------------------------------------------ *)

let find_decl (p : program) (name : string) : decl option =
  List.find_opt (fun d -> String.equal d.dname name) p.decls

let is_array (p : program) (name : string) : bool =
  match find_decl p name with Some d -> d.shape <> [] | None -> false

let param_value (p : program) (name : string) : int option =
  List.assoc_opt name p.params

(** Substitute parameter names by their integer values in an expression. *)
let rec subst_params (p : program) (e : expr) : expr =
  match e with
  | Var v -> ( match param_value p v with Some n -> Int n | None -> e)
  | Int _ | Real _ | Bool _ -> e
  | Arr (a, subs) -> Arr (a, List.map (subst_params p) subs)
  | Bin (o, a, b) -> Bin (o, subst_params p a, subst_params p b)
  | Un (o, a) -> Un (o, subst_params p a)
  | Intrin (o, a, b) -> Intrin (o, subst_params p a, subst_params p b)

(** Evaluate a compile-time constant integer expression, if possible. *)
let rec const_int_opt (p : program) (e : expr) : int option =
  let ( let* ) = Option.bind in
  match e with
  | Int n -> Some n
  | Var v -> param_value p v
  | Bin (op, a, b) -> (
      let* a = const_int_opt p a in
      let* b = const_int_opt p b in
      match op with
      | Add -> Some (a + b)
      | Sub -> Some (a - b)
      | Mul -> Some (a * b)
      | Div -> if b = 0 then None else Some (a / b)
      | Pow | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> None)
  | Un (Neg, a) ->
      let* a = const_int_opt p a in
      Some (-a)
  | Intrin (op, a, b) -> (
      let* a = const_int_opt p a in
      let* b = const_int_opt p b in
      match op with
      | Min2 -> Some (min a b)
      | Max2 -> Some (max a b)
      | Mod2 -> if b = 0 then None else Some (a mod b))
  | Real _ | Bool _ | Arr _ | Un _ -> None
