(** Hand-written lexer for the kernel language.

    Newlines are significant (Fortran statements are line-based) and are
    emitted as {!Token.NEWLINE}.  Plain [!] comments run to end of line;
    [!hpf$] introduces a directive whose remaining tokens are lexed
    normally after an {!Token.HPF} marker. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | REAL_LIT of float
  | TRUE
  | FALSE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW  (** [**] *)
  | EQEQ
  | NEQ  (** [/=] *)
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | LPAREN
  | RPAREN
  | COMMA
  | ASSIGN  (** [=] *)
  | COLON
  | DOLLAR of int  (** [$k]: positional alignee dummy in ALIGN subs *)
  | HPF  (** start of a [!hpf$] directive *)
  | NEWLINE
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | REAL_LIT f -> Printf.sprintf "real %g" f
  | TRUE -> ".true."
  | FALSE -> ".false."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | POW -> "**"
  | EQEQ -> "=="
  | NEQ -> "/="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AND -> ".and."
  | OR -> ".or."
  | NOT -> ".not."
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | ASSIGN -> "="
  | COLON -> ":"
  | DOLLAR k -> Printf.sprintf "$%d" k
  | HPF -> "!hpf$"
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let create ?(file = "<string>") src = { src; file; pos = 0; line = 1; bol = 0 }

let loc lx =
  Loc.make ~file:lx.file ~line:lx.line ~col:(lx.pos - lx.bol + 1)

let error lx msg = Diag.failf ~loc:(loc lx) ~code:"E0101" "%s" msg

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1]
  else None

let advance lx = lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let read_while lx pred =
  let start = lx.pos in
  let rec go () =
    match peek_char lx with
    | Some c when pred c ->
        advance lx;
        go ()
    | _ -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

(* Dotted words: .and. .or. .not. .true. .false. *)
let read_dotted lx =
  advance lx (* consume '.' *);
  let word = read_while lx is_alpha in
  (match peek_char lx with
  | Some '.' -> advance lx
  | _ -> error lx (Printf.sprintf "unterminated dotted word .%s" word));
  match String.lowercase_ascii word with
  | "and" -> AND
  | "or" -> OR
  | "not" -> NOT
  | "true" -> TRUE
  | "false" -> FALSE
  | w -> error lx (Printf.sprintf "unknown dotted word .%s." w)

let read_number lx =
  let intpart = read_while lx is_digit in
  let is_real = ref false in
  let frac =
    match (peek_char lx, peek_char2 lx) with
    | Some '.', Some c when is_digit c ->
        is_real := true;
        advance lx;
        "." ^ read_while lx is_digit
    | Some '.', (Some ' ' | Some '\n' | None | Some ')' | Some ',') ->
        (* "1." style real *)
        is_real := true;
        advance lx;
        "."
    | _ -> ""
  in
  let expo =
    match peek_char lx with
    | Some ('e' | 'E' | 'd' | 'D') -> (
        (* exponent only if followed by digits or sign+digits *)
        let save = lx.pos in
        advance lx;
        let sign =
          match peek_char lx with
          | Some (('+' | '-') as s) ->
              advance lx;
              String.make 1 s
          | _ -> ""
        in
        let digits = read_while lx is_digit in
        if digits = "" then begin
          lx.pos <- save;
          ""
        end
        else begin
          is_real := true;
          "e" ^ sign ^ digits
        end)
    | _ -> ""
  in
  if !is_real then REAL_LIT (float_of_string (intpart ^ frac ^ expo))
  else INT_LIT (int_of_string intpart)

(** Read the next token. *)
let rec next lx : token * Loc.t =
  let l = loc lx in
  match peek_char lx with
  | None -> (EOF, l)
  | Some ' ' | Some '\t' | Some '\r' ->
      advance lx;
      next lx
  | Some '\n' ->
      advance lx;
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos;
      (NEWLINE, l)
  | Some '!' ->
      (* directive or comment *)
      let rest_len = String.length lx.src - lx.pos in
      let is_hpf =
        rest_len >= 5
        && String.lowercase_ascii (String.sub lx.src lx.pos 5) = "!hpf$"
      in
      if is_hpf then begin
        lx.pos <- lx.pos + 5;
        (HPF, l)
      end
      else begin
        (* skip to end of line *)
        let _ = read_while lx (fun c -> c <> '\n') in
        next lx
      end
  | Some c when is_digit c -> (read_number lx, l)
  | Some '.' -> (
      match peek_char2 lx with
      | Some c when is_digit c ->
          (* .5 style real *)
          advance lx;
          let digits = read_while lx is_digit in
          (REAL_LIT (float_of_string ("0." ^ digits)), l)
      | _ -> (read_dotted lx, l))
  | Some c when is_alpha c ->
      let word = read_while lx is_alnum in
      (IDENT (String.lowercase_ascii word), l)
  | Some '$' ->
      advance lx;
      let digits = read_while lx is_digit in
      if digits = "" then error lx "expected digits after $"
      else (DOLLAR (int_of_string digits), l)
  | Some '+' ->
      advance lx;
      (PLUS, l)
  | Some '-' ->
      advance lx;
      (MINUS, l)
  | Some '*' ->
      advance lx;
      if peek_char lx = Some '*' then begin
        advance lx;
        (POW, l)
      end
      else (STAR, l)
  | Some '/' ->
      advance lx;
      if peek_char lx = Some '=' then begin
        advance lx;
        (NEQ, l)
      end
      else (SLASH, l)
  | Some '=' ->
      advance lx;
      if peek_char lx = Some '=' then begin
        advance lx;
        (EQEQ, l)
      end
      else (ASSIGN, l)
  | Some '<' ->
      advance lx;
      if peek_char lx = Some '=' then begin
        advance lx;
        (LE, l)
      end
      else (LT, l)
  | Some '>' ->
      advance lx;
      if peek_char lx = Some '=' then begin
        advance lx;
        (GE, l)
      end
      else (GT, l)
  | Some '(' ->
      advance lx;
      (LPAREN, l)
  | Some ')' ->
      advance lx;
      (RPAREN, l)
  | Some ',' ->
      advance lx;
      (COMMA, l)
  | Some ':' ->
      advance lx;
      (COLON, l)
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

(** Lex the whole input into a token list (with locations), ending in
    [EOF]. *)
let tokenize ?file src : (token * Loc.t) list =
  let lx = create ?file src in
  let rec go acc =
    let t, l = next lx in
    if t = EOF then List.rev ((t, l) :: acc) else go ((t, l) :: acc)
  in
  go []
