(** Recursive-descent parser for the kernel language (Fortran-flavoured,
    line-oriented; see the grammar comment in the implementation).

    The [!hpf$ independent [, new(...)]] directive may appear among
    executable statements and attaches to the next [do] loop; mapping
    directives ([processors] / [distribute] / [align]) belong to the
    header. *)

open Ast

(** Parse a complete program from a string.
    @param file name used in error locations.
    @raise Diag.Fatal on lexical ([E0101]) or syntax ([E0201]) errors. *)
val parse_string : ?file:string -> string -> program

(** Parse a program from a file on disk.
    @raise Diag.Fatal as {!parse_string}. *)
val parse_file : string -> program

(** {!parse_string}, with diagnostics as data instead of an exception. *)
val parse_string_result : ?file:string -> string -> (program, Diag.t list) result

(** {!parse_file}, with diagnostics as data instead of an exception. *)
val parse_file_result : string -> (program, Diag.t list) result

(** Parse a bare statement sequence (for tests). *)
val parse_stmts_string : string -> stmt list
