(** Structured diagnostics for every phase of the compiler.

    A diagnostic carries a severity, a stable error code, an optional
    source location and a rendered message.  All phases (lexer, parser,
    sema, layout resolution, the pipeline itself) report failures as
    diagnostics; the single escape hatch is the {!Fatal} exception, which
    the pass-manager ({!Phpf_driver.Pipeline}) catches at pass
    boundaries and converts into the [result]-typed API of
    {!Phpf_core.Compiler}.

    Error codes are grouped by phase:

    - [E01xx] — lexical errors
    - [E02xx] — syntax errors
    - [E03xx] — semantic errors ({!codes} below refine the class)
    - [E04xx] — mapping/layout errors
    - [E05xx] — driver/pipeline errors (unknown pass, ...)
    - [E06xx] — static-verifier soundness errors ([phpfc lint])
    - [W06xx] — static-verifier lint warnings *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  code : string;  (** stable machine-readable code, e.g. ["E0301"] *)
  loc : Loc.t option;  (** position, when the phase tracks one *)
  message : string;
}

(** Raised by phases on unrecoverable errors; caught at pass boundaries
    (never escapes {!Phpf_core.Compiler.compile} or the CLI). *)
exception Fatal of t list

let make ?(severity = Error) ?loc ~code message =
  { severity; code; loc; message }

let error ?loc ~code message = make ~severity:Error ?loc ~code message
let warning ?loc ~code message = make ~severity:Warning ?loc ~code message
let note ?loc ~code message = make ~severity:Note ?loc ~code message
let errorf ?loc ~code fmt = Fmt.kstr (fun m -> error ?loc ~code m) fmt
let warningf ?loc ~code fmt = Fmt.kstr (fun m -> warning ?loc ~code m) fmt

(** Format a message and raise {!Fatal} with a single error. *)
let failf ?loc ~code fmt =
  Fmt.kstr (fun m -> raise (Fatal [ error ?loc ~code m ])) fmt

let is_error d = d.severity = Error

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp_severity ppf s = Fmt.string ppf (severity_to_string s)

let pp ppf d =
  match d.loc with
  | Some l ->
      Fmt.pf ppf "%a: %a[%s]: %s" Loc.pp l pp_severity d.severity d.code
        d.message
  | None ->
      Fmt.pf ppf "%a[%s]: %s" pp_severity d.severity d.code d.message

let to_string d = Fmt.str "%a" pp d

let pp_list ppf ds = List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds

(* Readable output should a Fatal ever escape to a top level that does
   not render diagnostics itself. *)
let () =
  Printexc.register_printer (function
    | Fatal ds ->
        Some
          (String.concat "\n" (List.map to_string ds))
    | _ -> None)
