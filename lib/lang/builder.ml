(** Combinator DSL for constructing kernel-language programs in OCaml.

    Used by the benchmark generators ({!Hpf_benchmarks}) and by tests.  The
    operators mirror Fortran reading order:

    {[
      let open Hpf_lang.Builder in
      program "axpy"
        ~params:[ ("n", 100) ]
        ~decls:[ real_arr "x" [ 1 -- 100 ]; real "a" ]
        ~directives:[ distribute "x" [ block ] ]
        [ do_ "i" (int 1) (var "n")
            [ "x" $. [ var "i" ] <-- (var "a" * x_ [ var "i" ]) ] ]
    ]} *)

open Ast

(* ---------- expressions ---------- *)

let int n = Int n

(** Real literal ([real] is the declaration combinator below). *)
let rlit f = Real f

let bool b = Bool b
let var v = Var v
let arr a subs = Arr (a, subs)

let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( ** ) a b = Bin (Pow, a, b)
let ( = ) a b = Bin (Eq, a, b)
let ( <> ) a b = Bin (Ne, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( <= ) a b = Bin (Le, a, b)
let ( > ) a b = Bin (Gt, a, b)
let ( >= ) a b = Bin (Ge, a, b)
let ( && ) a b = Bin (And, a, b)
let ( || ) a b = Bin (Or, a, b)
let neg a = Un (Neg, a)
let not_ a = Un (Not, a)
let abs_ a = Un (Abs, a)
let sqrt_ a = Un (Sqrt, a)
let exp_ a = Un (Exp, a)
let log_ a = Un (Log, a)
let sign_ a = Un (Sign, a)
let min_ a b = Intrin (Min2, a, b)
let max_ a b = Intrin (Max2, a, b)
let mod_ a b = Intrin (Mod2, a, b)

(** [a $. subs] builds an array reference expression; sugar for {!arr}. *)
let ( $. ) a subs = Arr (a, subs)

(* ---------- statements ---------- *)

let assign_var v e = mk (Assign (LVar v, e))
let assign_arr a subs e = mk (Assign (LArr (a, subs), e))

(** [lhs <-- rhs] where [lhs] is an expression of shape [Var v] or
    [Arr (a, subs)].  Raises [Invalid_argument] otherwise. *)
let ( <-- ) lhs rhs =
  match lhs with
  | Var v -> assign_var v rhs
  | Arr (a, subs) -> assign_arr a subs rhs
  | _ -> invalid_arg "Builder.(<--): lhs must be a variable or array ref"

let if_ cond then_ else_ = mk (If (cond, then_, else_))
let if_then cond then_ = mk (If (cond, then_, []))
let exit_ ?name () = mk (Exit name)
let cycle ?name () = mk (Cycle name)

let do_ ?(step = Int 1) ?(independent = false) ?(new_vars = [])
    ?name index lo hi body =
  mk
    (Do
       {
         index;
         lo;
         hi;
         step;
         body;
         independent;
         new_vars;
         loop_name = name;
       })

(** An [INDEPENDENT, NEW(vars)] loop. *)
let indep_do ?(step = Int 1) ?(new_vars = []) ?name index lo hi body =
  do_ ~step ~independent:true ~new_vars ?name index lo hi body

(* ---------- declarations ---------- *)

let ( -- ) lo hi = Types.bounds lo hi

let scalar ty name = { dname = name; ty; shape = [] }
let real name = scalar Types.TReal name
let integer name = scalar Types.TInt name
let logical name = scalar Types.TBool name

let array ty name shape = { dname = name; ty; shape }
let real_arr name shape = array Types.TReal name shape
let int_arr name shape = array Types.TInt name shape

(* ---------- directives ---------- *)

let block = Block
let cyclic = Cyclic
let block_cyclic k = Block_cyclic k
let star = Star

let processors grid extents =
  Processors { grid; extents = List.map (fun n -> Int n) extents }

let distribute ?onto array fmts = Distribute { array; fmts; onto }

(** [align_dim d] = the alignee's [d]-th (0-based) dummy, identity. *)
let align_dim d = A_dim { dum = d; stride = 1; offset = 0 }

(** [align_dim_off d c] = alignee dummy [d] shifted by [c]. *)
let align_dim_off d c = A_dim { dum = d; stride = 1; offset = c }

let align_const c = A_const c
let align_star = A_star

let align alignee target subs = Align { alignee; target; subs }

(** [align_identity b a r] aligns rank-[r] array [b] identically with [a]:
    [ALIGN b(i1..ir) WITH a(i1..ir)]. *)
let align_identity alignee target r =
  align alignee target (List.init r align_dim)

(* ---------- program ---------- *)

(** Statements built by the combinators above are unnumbered ([sid = 0]);
    [program] renumbers the whole body in deterministic preorder, so the
    same builder calls always yield the same sids — independent of any
    other program built before or concurrently. *)
let program ?(params = []) ?(decls = []) ?(directives = []) pname body =
  Ast.renumber { pname; params; decls; directives; body }
