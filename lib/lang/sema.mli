(** Semantic checks and normalization.

    {!check} validates declarations, reference ranks, directive
    consistency, loop-index discipline and [EXIT]/[CYCLE] targets, and
    returns the program with statement ids renumbered deterministically
    (preorder 1, 2, 3, ...), which every analysis relies on.

    Violations are reported as {!Diag.t} values with codes
    [E0301]-[E0306] (see {!Diag}). *)

(** Validate and renumber, accumulating diagnostics: each top-level unit
    (declaration set, directive, top-level statement) contributes at most
    one diagnostic, so several independent mistakes surface in one run. *)
val check_result : Ast.program -> (Ast.program, Diag.t list) result

(** Like {!check_result} but raising.
    @raise Diag.Fatal with the accumulated diagnostics. *)
val check : Ast.program -> Ast.program

(** Like {!check} with the program name prefixed to error messages. *)
val check_named : Ast.program -> Ast.program
