(** Recursive-descent parser for the kernel language.

    Grammar (Fortran-flavoured, line oriented):

    {v
    program   ::= 'program' IDENT NL { header-item } { stmt } 'end' ['program'] NL*
    header    ::= 'parameter' IDENT '=' INT NL
                | type IDENT [shape] { ',' IDENT [shape] } NL
                | '!hpf$' directive NL
    type      ::= 'real' | 'integer' | 'logical'
    shape     ::= '(' bounds { ',' bounds } ')'
    bounds    ::= INT [':' INT]
    directive ::= 'processors' IDENT '(' expr { ',' expr } ')'
                | 'distribute' IDENT '(' fmt { ',' fmt } ')' ['onto' IDENT]
                | 'distribute' '(' fmt { ',' fmt } ')' ['onto' IDENT] '::' IDENT { ',' IDENT }
                | 'align' IDENT '(' dummies ')' 'with' IDENT '(' asubs ')'
                | 'align' '(' dummies ')' 'with' IDENT '(' asubs ')' '::' IDENT { ',' IDENT }
                | 'independent' [',' 'new' '(' IDENT { ',' IDENT } ')']
    stmt      ::= lhs '=' expr NL
                | 'if' '(' expr ')' 'then' NL { stmt } ['else' NL { stmt }] 'end' 'if' NL
                | 'if' '(' expr ')' simple-stmt NL
                | [IDENT ':'] 'do' IDENT '=' expr ',' expr [',' expr] NL { stmt } 'end' 'do' NL
                | 'exit' [IDENT] NL | 'cycle' [IDENT] NL
    v}

    The [!hpf$ independent] directive may appear in the statement part and
    attaches to the next [do] loop. *)

open Ast

type t = {
  toks : (Lexer.token * Loc.t) array;
  mutable pos : int;
  mutable pending_independent : (bool * string list) option;
      (** set by a [!hpf$ independent] directive, consumed by the next DO *)
  ids : Ast.ids;
      (** per-parse statement-id allocator: each parse owns its own
          counter, so concurrent parses never share mutable state *)
}

let create toks =
  {
    toks = Array.of_list toks;
    pos = 0;
    pending_independent = None;
    ids = Ast.ids ();
  }

(* Construction-time ids come from this parse's own allocator. *)
let mk ps ?loc node = Ast.mk_in ps.ids ?loc node

let peek ps = fst ps.toks.(ps.pos)
let peek_loc ps = snd ps.toks.(ps.pos)

let peek2 ps =
  if ps.pos + 1 < Array.length ps.toks then fst ps.toks.(ps.pos + 1)
  else Lexer.EOF

let advance ps = if ps.pos < Array.length ps.toks - 1 then ps.pos <- ps.pos + 1

let error ps msg = Diag.failf ~loc:(peek_loc ps) ~code:"E0201" "%s" msg

let expect ps tok =
  if peek ps = tok then advance ps
  else
    error ps
      (Printf.sprintf "expected %s but found %s"
         (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek ps)))

let expect_ident ps =
  match peek ps with
  | Lexer.IDENT s ->
      advance ps;
      s
  | t ->
      error ps
        (Printf.sprintf "expected identifier but found %s"
           (Lexer.token_to_string t))

let expect_keyword ps kw =
  match peek ps with
  | Lexer.IDENT s when s = kw -> advance ps
  | t ->
      error ps
        (Printf.sprintf "expected %S but found %s" kw
           (Lexer.token_to_string t))

let at_keyword ps kw =
  match peek ps with Lexer.IDENT s -> s = kw | _ -> false

let expect_int ps =
  match peek ps with
  | Lexer.INT_LIT n ->
      advance ps;
      n
  | Lexer.MINUS -> (
      advance ps;
      match peek ps with
      | Lexer.INT_LIT n ->
          advance ps;
          -n
      | t ->
          error ps
            (Printf.sprintf "expected integer but found %s"
               (Lexer.token_to_string t)))
  | t ->
      error ps
        (Printf.sprintf "expected integer but found %s"
           (Lexer.token_to_string t))

let skip_newlines ps =
  while peek ps = Lexer.NEWLINE do
    advance ps
  done

let expect_newline ps =
  match peek ps with
  | Lexer.NEWLINE | Lexer.EOF -> skip_newlines ps
  | t ->
      error ps
        (Printf.sprintf "expected end of line but found %s"
           (Lexer.token_to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                     *)
(* ------------------------------------------------------------------ *)

let intrinsic1 = function
  | "abs" -> Some Abs
  | "sqrt" -> Some Sqrt
  | "exp" -> Some Exp
  | "log" -> Some Log
  | "sign" -> Some Sign
  | _ -> None

let intrinsic2 = function
  | "min" -> Some Min2
  | "max" -> Some Max2
  | "mod" -> Some Mod2
  | _ -> None

let rec parse_expr ps = parse_binary ps 1

and parse_binary ps min_prec =
  let lhs = ref (parse_unary ps) in
  let continue_ = ref true in
  while !continue_ do
    let op_prec =
      match peek ps with
      | Lexer.OR -> Some (Or, 1)
      | Lexer.AND -> Some (And, 2)
      | Lexer.EQEQ -> Some (Eq, 3)
      | Lexer.NEQ -> Some (Ne, 3)
      | Lexer.LT -> Some (Lt, 3)
      | Lexer.LE -> Some (Le, 3)
      | Lexer.GT -> Some (Gt, 3)
      | Lexer.GE -> Some (Ge, 3)
      | Lexer.PLUS -> Some (Add, 4)
      | Lexer.MINUS -> Some (Sub, 4)
      | Lexer.STAR -> Some (Mul, 5)
      | Lexer.SLASH -> Some (Div, 5)
      | Lexer.POW -> Some (Pow, 6)
      | _ -> None
    in
    match op_prec with
    | Some (op, prec) when prec >= min_prec ->
        advance ps;
        (* all our binary ops associate left *)
        let rhs = parse_binary ps (prec + 1) in
        lhs := Bin (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary ps =
  match peek ps with
  | Lexer.MINUS ->
      advance ps;
      Un (Neg, parse_unary ps)
  | Lexer.NOT ->
      advance ps;
      Un (Not, parse_unary ps)
  | Lexer.PLUS ->
      advance ps;
      parse_unary ps
  | _ -> parse_primary ps

and parse_primary ps =
  match peek ps with
  | Lexer.INT_LIT n ->
      advance ps;
      Int n
  | Lexer.REAL_LIT f ->
      advance ps;
      Real f
  | Lexer.TRUE ->
      advance ps;
      Bool true
  | Lexer.FALSE ->
      advance ps;
      Bool false
  | Lexer.LPAREN ->
      advance ps;
      let e = parse_expr ps in
      expect ps Lexer.RPAREN;
      e
  | Lexer.DOLLAR k ->
      (* positional alignee dummy, only meaningful inside ALIGN subs *)
      advance ps;
      Var (Printf.sprintf "$%d" k)
  | Lexer.IDENT name -> (
      advance ps;
      match peek ps with
      | Lexer.LPAREN -> (
          advance ps;
          let args = parse_expr_list ps in
          expect ps Lexer.RPAREN;
          match (intrinsic1 name, intrinsic2 name, args) with
          | Some op, _, [ a ] -> Un (op, a)
          | _, Some op, [ a; b ] -> Intrin (op, a, b)
          | Some _, _, _ ->
              error ps (Printf.sprintf "intrinsic %s takes 1 argument" name)
          | _, Some _, _ ->
              error ps (Printf.sprintf "intrinsic %s takes 2 arguments" name)
          | None, None, _ -> Arr (name, args))
      | _ -> Var name)
  | t ->
      error ps
        (Printf.sprintf "expected expression but found %s"
           (Lexer.token_to_string t))

and parse_expr_list ps =
  let e = parse_expr ps in
  if peek ps = Lexer.COMMA then begin
    advance ps;
    e :: parse_expr_list ps
  end
  else [ e ]

(* ------------------------------------------------------------------ *)
(* Directives                                                           *)
(* ------------------------------------------------------------------ *)

let parse_ident_list ps =
  let rec go acc =
    let id = expect_ident ps in
    if peek ps = Lexer.COMMA then begin
      advance ps;
      go (id :: acc)
    end
    else List.rev (id :: acc)
  in
  go []

let parse_dist_format ps =
  match peek ps with
  | Lexer.STAR ->
      advance ps;
      Star
  | Lexer.IDENT "block" ->
      advance ps;
      Block
  | Lexer.IDENT "cyclic" ->
      advance ps;
      if peek ps = Lexer.LPAREN then begin
        advance ps;
        let k = expect_int ps in
        expect ps Lexer.RPAREN;
        Block_cyclic k
      end
      else Cyclic
  | t ->
      error ps
        (Printf.sprintf "expected distribution format but found %s"
           (Lexer.token_to_string t))

let parse_fmt_list ps =
  expect ps Lexer.LPAREN;
  let rec go acc =
    let f = parse_dist_format ps in
    if peek ps = Lexer.COMMA then begin
      advance ps;
      go (f :: acc)
    end
    else List.rev (f :: acc)
  in
  let fmts = go [] in
  expect ps Lexer.RPAREN;
  fmts

(* Alignee dummies: identifiers or $k positional markers. *)
let parse_dummies ps =
  expect ps Lexer.LPAREN;
  let rec go acc k =
    let d =
      match peek ps with
      | Lexer.IDENT name ->
          advance ps;
          name
      | Lexer.DOLLAR n ->
          advance ps;
          Printf.sprintf "$%d" n
      | Lexer.STAR ->
          (* collapsed alignee dim: unnamed *)
          advance ps;
          Printf.sprintf "$unused%d" k
      | t ->
          error ps
            (Printf.sprintf "expected alignment dummy but found %s"
               (Lexer.token_to_string t))
    in
    if peek ps = Lexer.COMMA then begin
      advance ps;
      go (d :: acc) (k + 1)
    end
    else List.rev (d :: acc)
  in
  let ds = go [] 0 in
  expect ps Lexer.RPAREN;
  ds

(* Convert an affine expression over dummies into an align_sub. *)
let align_sub_of_expr ps dummies (e : expr) : align_sub =
  (* Positional $k dummies may appear without being declared in an alignee
     dummy list; add them on the fly. *)
  let dollar_vars =
    List.filter
      (fun v -> String.length v > 1 && v.[0] = '$' && not (List.mem v dummies))
      (expr_vars e)
  in
  let dummies = dummies @ dollar_vars in
  (* compute (coeffs per dummy, constant) *)
  let n = List.length dummies in
  let index_of d =
    let rec go i = function
      | [] -> None
      | x :: _ when String.equal x d -> Some i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 dummies
  in
  let rec affine e : (int array * int) option =
    match e with
    | Int c -> Some (Array.make n 0, c)
    | Var v -> (
        match index_of v with
        | Some i ->
            let a = Array.make n 0 in
            a.(i) <- 1;
            Some (a, 0)
        | None -> None)
    | Bin (Add, x, y) -> (
        match (affine x, affine y) with
        | Some (ax, cx), Some (ay, cy) ->
            Some (Array.init n (fun i -> ax.(i) + ay.(i)), cx + cy)
        | _ -> None)
    | Bin (Sub, x, y) -> (
        match (affine x, affine y) with
        | Some (ax, cx), Some (ay, cy) ->
            Some (Array.init n (fun i -> ax.(i) - ay.(i)), cx - cy)
        | _ -> None)
    | Bin (Mul, Int k, y) | Bin (Mul, y, Int k) -> (
        match affine y with
        | Some (ay, cy) ->
            Some (Array.map (fun c -> k * c) ay, k * cy)
        | None -> None)
    | Un (Neg, x) -> (
        match affine x with
        | Some (ax, cx) -> Some (Array.map (fun c -> -c) ax, -cx)
        | None -> None)
    | _ -> None
  in
  (* dummies beginning with '$' that look like $k map to position k *)
  let dum_position i =
    let name = List.nth dummies i in
    if String.length name > 1 && name.[0] = '$' then
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | Some k -> k
      | None -> i
    else i
  in
  match affine e with
  | None -> error ps "alignment subscript must be affine in one dummy"
  | Some (coeffs, const) -> (
      let nonzero =
        Array.to_list coeffs
        |> List.mapi (fun i c -> (i, c))
        |> List.filter (fun (_, c) -> c <> 0)
      in
      match nonzero with
      | [] -> A_const const
      | [ (i, c) ] -> A_dim { dum = dum_position i; stride = c; offset = const }
      | _ -> error ps "alignment subscript uses more than one dummy")

let parse_align_subs ps dummies =
  expect ps Lexer.LPAREN;
  let rec go acc =
    let sub =
      match peek ps with
      | Lexer.STAR ->
          advance ps;
          A_star
      | Lexer.DOLLAR k ->
          (* allow "$k [+|- c]" shorthand directly *)
          advance ps;
          let off =
            match peek ps with
            | Lexer.PLUS ->
                advance ps;
                expect_int ps
            | Lexer.MINUS ->
                advance ps;
                -(expect_int ps)
            | _ -> 0
          in
          A_dim { dum = k; stride = 1; offset = off }
      | _ ->
          let e = parse_expr ps in
          align_sub_of_expr ps dummies e
    in
    if peek ps = Lexer.COMMA then begin
      advance ps;
      go (sub :: acc)
    end
    else List.rev (sub :: acc)
  in
  let subs = go [] in
  expect ps Lexer.RPAREN;
  subs

(* Parse a directive after the !hpf$ marker.  Returns global directives;
   INDEPENDENT is recorded in [ps.pending_independent] and returns []. *)
let parse_directive ps : directive list =
  match peek ps with
  | Lexer.IDENT "processors" ->
      advance ps;
      let grid = expect_ident ps in
      expect ps Lexer.LPAREN;
      let extents = parse_expr_list ps in
      expect ps Lexer.RPAREN;
      [ Processors { grid; extents } ]
  | Lexer.IDENT "distribute" ->
      advance ps;
      if peek ps = Lexer.LPAREN then begin
        (* distribute (fmts) [onto g] :: a, b *)
        let fmts = parse_fmt_list ps in
        let onto =
          if at_keyword ps "onto" then begin
            advance ps;
            Some (expect_ident ps)
          end
          else None
        in
        expect ps Lexer.COLON;
        expect ps Lexer.COLON;
        let arrays = parse_ident_list ps in
        List.map (fun array -> Distribute { array; fmts; onto }) arrays
      end
      else begin
        let array = expect_ident ps in
        let fmts = parse_fmt_list ps in
        let onto =
          if at_keyword ps "onto" then begin
            advance ps;
            Some (expect_ident ps)
          end
          else None
        in
        [ Distribute { array; fmts; onto } ]
      end
  | Lexer.IDENT "align" ->
      advance ps;
      if peek ps = Lexer.LPAREN then begin
        (* align (dummies) with target(subs) :: a, b *)
        let dummies = parse_dummies ps in
        expect_keyword ps "with";
        let target = expect_ident ps in
        let subs = parse_align_subs ps dummies in
        expect ps Lexer.COLON;
        expect ps Lexer.COLON;
        let arrays = parse_ident_list ps in
        List.map (fun alignee -> Align { alignee; target; subs }) arrays
      end
      else begin
        let alignee = expect_ident ps in
        let dummies =
          if peek ps = Lexer.LPAREN then parse_dummies ps else []
        in
        expect_keyword ps "with";
        let target = expect_ident ps in
        let subs =
          if peek ps = Lexer.LPAREN then parse_align_subs ps dummies
          else []
        in
        [ Align { alignee; target; subs } ]
      end
  | Lexer.IDENT "independent" ->
      advance ps;
      let new_vars =
        if peek ps = Lexer.COMMA then begin
          advance ps;
          expect_keyword ps "new";
          expect ps Lexer.LPAREN;
          let vs = parse_ident_list ps in
          expect ps Lexer.RPAREN;
          vs
        end
        else []
      in
      ps.pending_independent <- Some (true, new_vars);
      []
  | Lexer.IDENT "new" ->
      (* standalone NEW(...) treated as independent+new *)
      advance ps;
      expect ps Lexer.LPAREN;
      let vs = parse_ident_list ps in
      expect ps Lexer.RPAREN;
      ps.pending_independent <- Some (true, vs);
      []
  | t ->
      error ps
        (Printf.sprintf "unknown !hpf$ directive starting with %s"
           (Lexer.token_to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let is_stmt_start ps =
  match peek ps with
  | Lexer.IDENT "end" -> false
  | Lexer.IDENT "else" -> false
  | Lexer.IDENT _ | Lexer.HPF -> true
  | _ -> false

let rec parse_stmts ps : stmt list =
  skip_newlines ps;
  if is_stmt_start ps then
    match parse_stmt ps with
    | Some s -> s :: parse_stmts ps
    | None -> parse_stmts ps
  else []

(* Returns None for directive-only lines (e.g. independent). *)
and parse_stmt ps : stmt option =
  match peek ps with
  | Lexer.HPF ->
      advance ps;
      let ds = parse_directive ps in
      if ds <> [] then
        error ps "mapping directives must appear before executable statements";
      expect_newline ps;
      None
  | Lexer.IDENT "if" -> Some (parse_if ps)
  | Lexer.IDENT "do" -> Some (parse_do ps None)
  | Lexer.IDENT "exit" ->
      let loc = peek_loc ps in
      advance ps;
      let name =
        match peek ps with
        | Lexer.IDENT n ->
            advance ps;
            Some n
        | _ -> None
      in
      expect_newline ps;
      Some (mk ps ~loc (Exit name))
  | Lexer.IDENT "cycle" ->
      let loc = peek_loc ps in
      advance ps;
      let name =
        match peek ps with
        | Lexer.IDENT n ->
            advance ps;
            Some n
        | _ -> None
      in
      expect_newline ps;
      Some (mk ps ~loc (Cycle name))
  | Lexer.IDENT name when peek2 ps = Lexer.COLON ->
      (* named loop *)
      advance ps;
      advance ps;
      expect_keyword ps "do" |> ignore;
      (* un-consume 'do': parse_do expects to consume it *)
      ps.pos <- ps.pos - 1;
      Some (parse_do ps (Some name))
  | Lexer.IDENT _ -> Some (parse_assign ps)
  | t ->
      error ps
        (Printf.sprintf "expected statement but found %s"
           (Lexer.token_to_string t))

and parse_assign ps =
  let loc = peek_loc ps in
  let name = expect_ident ps in
  let lhs =
    if peek ps = Lexer.LPAREN then begin
      advance ps;
      let subs = parse_expr_list ps in
      expect ps Lexer.RPAREN;
      LArr (name, subs)
    end
    else LVar name
  in
  expect ps Lexer.ASSIGN;
  let rhs = parse_expr ps in
  expect_newline ps;
  mk ps ~loc (Assign (lhs, rhs))

and parse_if ps =
  let loc = peek_loc ps in
  expect_keyword ps "if";
  expect ps Lexer.LPAREN;
  let cond = parse_expr ps in
  expect ps Lexer.RPAREN;
  if at_keyword ps "then" then begin
    advance ps;
    expect_newline ps;
    let then_branch = parse_stmts ps in
    skip_newlines ps;
    let else_branch =
      if at_keyword ps "else" then begin
        advance ps;
        expect_newline ps;
        parse_stmts ps
      end
      else []
    in
    skip_newlines ps;
    expect_keyword ps "end";
    expect_keyword ps "if";
    expect_newline ps;
    mk ps ~loc (If (cond, then_branch, else_branch))
  end
  else begin
    (* one-line if *)
    match parse_stmt ps with
    | Some s -> mk ps ~loc (If (cond, [ s ], []))
    | None -> error ps "expected statement after one-line if"
  end

and parse_do ps loop_name =
  let loc = peek_loc ps in
  let independent, new_vars =
    match ps.pending_independent with
    | Some (i, nv) ->
        ps.pending_independent <- None;
        (i, nv)
    | None -> (false, [])
  in
  expect_keyword ps "do";
  let index = expect_ident ps in
  expect ps Lexer.ASSIGN;
  let lo = parse_expr ps in
  expect ps Lexer.COMMA;
  let hi = parse_expr ps in
  let step =
    if peek ps = Lexer.COMMA then begin
      advance ps;
      parse_expr ps
    end
    else Int 1
  in
  expect_newline ps;
  let body = parse_stmts ps in
  skip_newlines ps;
  expect_keyword ps "end";
  expect_keyword ps "do";
  expect_newline ps;
  mk ps ~loc
    (Do { index; lo; hi; step; body; independent; new_vars; loop_name })

(* ------------------------------------------------------------------ *)
(* Declarations and program                                             *)
(* ------------------------------------------------------------------ *)

let parse_bounds ps : Types.bounds =
  let a = expect_int ps in
  if peek ps = Lexer.COLON then begin
    advance ps;
    let b = expect_int ps in
    Types.bounds a b
  end
  else Types.bounds 1 a

let parse_shape ps : Types.shape =
  expect ps Lexer.LPAREN;
  let rec go acc =
    let b = parse_bounds ps in
    if peek ps = Lexer.COMMA then begin
      advance ps;
      go (b :: acc)
    end
    else List.rev (b :: acc)
  in
  let s = go [] in
  expect ps Lexer.RPAREN;
  s

let parse_decl_line ps ty : decl list =
  let rec go acc =
    let name = expect_ident ps in
    let shape = if peek ps = Lexer.LPAREN then parse_shape ps else [] in
    let d = { dname = name; ty; shape } in
    if peek ps = Lexer.COMMA then begin
      advance ps;
      go (d :: acc)
    end
    else List.rev (d :: acc)
  in
  let ds = go [] in
  expect_newline ps;
  ds

let parse_program ps : program =
  skip_newlines ps;
  expect_keyword ps "program";
  let pname = expect_ident ps in
  expect_newline ps;
  let params = ref [] in
  let decls = ref [] in
  let directives = ref [] in
  let rec header () =
    skip_newlines ps;
    match peek ps with
    | Lexer.IDENT "parameter" ->
        advance ps;
        let name = expect_ident ps in
        expect ps Lexer.ASSIGN;
        let v = expect_int ps in
        expect_newline ps;
        params := (name, v) :: !params;
        header ()
    | Lexer.IDENT ("real" | "integer" | "logical") ->
        let ty =
          match peek ps with
          | Lexer.IDENT "real" -> Types.TReal
          | Lexer.IDENT "integer" -> Types.TInt
          | _ -> Types.TBool
        in
        advance ps;
        decls := !decls @ parse_decl_line ps ty;
        header ()
    | Lexer.HPF when peek2 ps <> Lexer.IDENT "independent"
                     && peek2 ps <> Lexer.IDENT "new" ->
        advance ps;
        directives := !directives @ parse_directive ps;
        expect_newline ps;
        header ()
    | _ -> ()
  in
  header ();
  let body = parse_stmts ps in
  skip_newlines ps;
  expect_keyword ps "end";
  if at_keyword ps "program" then advance ps;
  (match peek ps with Lexer.IDENT _ -> advance ps | _ -> ());
  skip_newlines ps;
  {
    pname;
    params = List.rev !params;
    decls = !decls;
    directives = !directives;
    body;
  }

(** Parse a complete program from a string.
    @raise Diag.Fatal on lexical ([E0101]) or syntax ([E0201]) errors *)
let parse_string ?file src : program =
  let toks = Lexer.tokenize ?file src in
  let ps = create toks in
  let p = parse_program ps in
  skip_newlines ps;
  (match peek ps with
  | Lexer.EOF -> ()
  | t ->
      error ps
        (Printf.sprintf "trailing input: %s" (Lexer.token_to_string t)));
  p

(** Parse a program from a file on disk. *)
let parse_file path : program =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ~file:path src

(** Parse a single statement block (for tests). *)
let parse_stmts_string src : stmt list =
  let toks = Lexer.tokenize src in
  let ps = create toks in
  let stmts = parse_stmts ps in
  skip_newlines ps;
  stmts

(** {!parse_string} with diagnostics as data instead of an exception. *)
let parse_string_result ?file src : (program, Diag.t list) result =
  match parse_string ?file src with
  | p -> Ok p
  | exception Diag.Fatal ds -> Error ds

(** {!parse_file} with diagnostics as data instead of an exception. *)
let parse_file_result path : (program, Diag.t list) result =
  match parse_file path with
  | p -> Ok p
  | exception Diag.Fatal ds -> Error ds
