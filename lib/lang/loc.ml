(** Source locations for the kernel-language front end.

    Locations are tracked by the lexer and attached to parse errors and
    semantic diagnostics.  Statements parsed from source carry their
    position ({!Ast.stmt.loc}) so runtime errors raised by the
    interpreters can point at the offending line; programs built with
    {!Builder} have no locations. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string l = Fmt.str "%a" pp l
