(** Semantic checks and normalization for kernel-language programs.

    {!check} validates a program and returns it with statement ids
    renumbered deterministically.  Checks performed:

    - every referenced variable is declared, a parameter, or an enclosing
      loop index;
    - array references have as many subscripts as the declared rank, and
      scalars are not subscripted;
    - loop indices are not assigned inside their loop;
    - directives refer to declared arrays/grids with matching ranks;
    - [NEW] variables are declared;
    - [EXIT]/[CYCLE] name an enclosing loop (when named) and appear inside
      a loop.

    Violations are reported as {!Diag.t} values (codes [E0301]-[E0306]);
    {!check_result} accumulates one diagnostic per offending declaration,
    directive and top-level statement instead of stopping at the first. *)

open Ast

let err ~code fmt =
  Fmt.kstr (fun s -> raise (Diag.Fatal [ Diag.error ~code s ])) fmt

type env = {
  prog : program;
  grids : (string * int) list;  (** grid name -> rank *)
}

let decl_rank env name =
  match find_decl env.prog name with
  | Some d -> Some (Types.rank d.shape)
  | None -> None

let rec check_expr env ~indices (e : expr) =
  match e with
  | Int _ | Real _ | Bool _ -> ()
  | Var v ->
      if
        (not (List.mem v indices))
        && param_value env.prog v = None
        && find_decl env.prog v = None
      then err ~code:"E0301" "undeclared variable %s" v;
      (match decl_rank env v with
      | Some r when r > 0 ->
          err ~code:"E0302" "array %s referenced without subscripts" v
      | _ -> ())
  | Arr (a, subs) -> (
      List.iter (check_expr env ~indices) subs;
      match decl_rank env a with
      | None -> err ~code:"E0301" "undeclared array %s" a
      | Some 0 -> err ~code:"E0302" "scalar %s referenced with subscripts" a
      | Some r when r <> List.length subs ->
          err ~code:"E0302" "array %s has rank %d but %d subscripts given" a
            r (List.length subs)
      | Some _ -> ())
  | Bin (_, x, y) | Intrin (_, x, y) ->
      check_expr env ~indices x;
      check_expr env ~indices y
  | Un (_, x) -> check_expr env ~indices x

let check_lhs env ~indices = function
  | LVar v -> (
      if List.mem v indices then
        err ~code:"E0303" "assignment to loop index %s" v;
      if param_value env.prog v <> None then
        err ~code:"E0303" "assignment to parameter %s" v;
      match decl_rank env v with
      | None -> err ~code:"E0301" "undeclared variable %s" v
      | Some r when r > 0 ->
          err ~code:"E0302" "array %s assigned without subscripts" v
      | Some _ -> ())
  | LArr (a, subs) -> (
      List.iter (check_expr env ~indices) subs;
      match decl_rank env a with
      | None -> err ~code:"E0301" "undeclared array %s" a
      | Some 0 -> err ~code:"E0302" "scalar %s assigned with subscripts" a
      | Some r when r <> List.length subs ->
          err ~code:"E0302" "array %s has rank %d but %d subscripts given" a
            r (List.length subs)
      | Some _ -> ())

let rec check_stmt env ~indices ~loops (s : stmt) =
  match s.node with
  | Assign (lhs, rhs) ->
      check_lhs env ~indices lhs;
      check_expr env ~indices rhs
  | If (c, t, e) ->
      check_expr env ~indices c;
      List.iter (check_stmt env ~indices ~loops) t;
      List.iter (check_stmt env ~indices ~loops) e
  | Exit name | Cycle name -> (
      if loops = [] then err ~code:"E0306" "exit/cycle outside any loop";
      match name with
      | None -> ()
      | Some n ->
          if not (List.mem (Some n) loops) then
            err ~code:"E0306" "exit/cycle names unknown loop %s" n)
  | Do d ->
      if List.mem d.index indices then
        err ~code:"E0303" "loop index %s reused by nested loop" d.index;
      check_expr env ~indices d.lo;
      check_expr env ~indices d.hi;
      check_expr env ~indices d.step;
      List.iter
        (fun v ->
          if find_decl env.prog v = None then
            err ~code:"E0301" "NEW variable %s is not declared" v)
        d.new_vars;
      let indices = d.index :: indices in
      let loops = d.loop_name :: loops in
      List.iter (check_stmt env ~indices ~loops) d.body

let check_directive env = function
  | Processors { grid = _; extents } ->
      List.iter
        (fun e ->
          match const_int_opt env.prog e with
          | Some n when n >= 1 -> ()
          | Some n -> err ~code:"E0304" "processors extent %d must be >= 1" n
          | None -> err ~code:"E0304" "processors extents must be constant")
        extents
  | Distribute { array; fmts; onto } -> (
      (match onto with
      | Some g when not (List.mem_assoc g env.grids) ->
          err ~code:"E0304" "distribute onto unknown grid %s" g
      | Some g ->
          let grid_rank = List.assoc g env.grids in
          let mapped =
            List.length (List.filter (fun f -> f <> Star) fmts)
          in
          if mapped > grid_rank then
            err ~code:"E0304"
              "distribute of %s maps %d dims onto rank-%d grid %s" array
              mapped grid_rank g
      | None -> ());
      match decl_rank env array with
      | None -> err ~code:"E0301" "distribute of undeclared array %s" array
      | Some r when r <> List.length fmts ->
          err ~code:"E0302" "distribute of %s: %d formats for rank %d" array
            (List.length fmts) r
      | Some 0 -> err ~code:"E0304" "cannot distribute scalar %s" array
      | Some _ -> ())
  | Align { alignee; target; subs } -> (
      (match decl_rank env alignee with
      | None -> err ~code:"E0301" "align of undeclared variable %s" alignee
      | Some _ -> ());
      match decl_rank env target with
      | None -> err ~code:"E0301" "align with undeclared array %s" target
      | Some r when r <> List.length subs ->
          err ~code:"E0302" "align with %s: %d subscripts for rank %d" target
            (List.length subs) r
      | Some _ ->
          let alignee_rank =
            match decl_rank env alignee with Some r -> r | None -> 0
          in
          List.iter
            (function
              | A_dim { dum; _ } when dum < 0 || dum >= max 1 alignee_rank ->
                  err ~code:"E0304" "align of %s: dummy $%d out of range"
                    alignee dum
              | A_dim { stride = 0; _ } ->
                  err ~code:"E0304" "align of %s: zero stride" alignee
              | A_dim _ | A_const _ | A_star -> ())
            subs)

(** Check for duplicate declarations and declaration/parameter clashes. *)
let check_decls (p : program) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d.dname then
        err ~code:"E0305" "duplicate declaration of %s" d.dname;
      if param_value p d.dname <> None then
        err ~code:"E0305" "%s declared both as parameter and variable"
          d.dname;
      Hashtbl.add seen d.dname ())
    p.decls;
  let pseen = Hashtbl.create 16 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem pseen n then err ~code:"E0305" "duplicate parameter %s" n;
      Hashtbl.add pseen n ())
    p.params

(** Validate [p]; return it with deterministic statement ids, or the
    accumulated diagnostics.  Each top-level unit (declaration set,
    directive, top-level statement) contributes at most one diagnostic,
    so several independent mistakes are reported in a single run. *)
let check_result (p : program) : (program, Diag.t list) result =
  let diags = ref [] in
  let guard f = try f () with Diag.Fatal ds -> diags := !diags @ ds in
  guard (fun () -> check_decls p);
  let grids =
    List.filter_map
      (function
        | Processors { grid; extents } -> Some (grid, List.length extents)
        | Distribute _ | Align _ -> None)
      p.directives
  in
  let env = { prog = p; grids } in
  List.iter (fun d -> guard (fun () -> check_directive env d)) p.directives;
  List.iter
    (fun s -> guard (fun () -> check_stmt env ~indices:[] ~loops:[] s))
    p.body;
  match !diags with [] -> Ok (renumber p) | ds -> Error ds

(** Validate [p]; return it with deterministic statement ids.
    @raise Diag.Fatal with the accumulated diagnostics on any violation. *)
let check (p : program) : program =
  match check_result p with Ok p -> p | Error ds -> raise (Diag.Fatal ds)

(** [check] then return, or raise {!Diag.Fatal} with the program name
    prepended to each message for context. *)
let check_named (p : program) : program =
  try check p
  with Diag.Fatal ds ->
    raise
      (Diag.Fatal
         (List.map
            (fun (d : Diag.t) ->
              { d with Diag.message = p.pname ^ ": " ^ d.Diag.message })
            ds))
