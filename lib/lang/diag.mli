(** Structured diagnostics: severity, stable error code, optional
    {!Loc.t}, message.  Every compiler phase reports failures this way;
    {!Fatal} is caught at pass boundaries so the library API and the CLI
    surface [(_, t list) result] values instead of phase-specific
    exceptions.

    Error-code ranges:

    - [E0101] lexical error
    - [E0201] syntax error
    - [E0301] undeclared identifier
    - [E0302] rank/subscript mismatch
    - [E0303] assignment discipline (loop index, parameter, index reuse)
    - [E0304] inconsistent directive
    - [E0305] duplicate declaration or parameter
    - [E0306] misplaced [EXIT]/[CYCLE]
    - [E0401] mapping/layout error
    - [E0402] invalid processor grid extents
    - [E0501] pipeline/driver error (e.g. unknown pass name)
    - [E0601]-[E0612] static-verifier soundness errors ([phpfc lint]):
      privatized value escaping its validity scope ([E0601]) or live
      across a loop back edge ([E0602]), missing communication for a
      non-local read ([E0603]), communication hoisted past a dependence
      or sunk below its vectorization level ([E0604]), replication
      dimensions inconsistent with the grid ([E0605]), structurally
      invalid mapping record ([E0606]), owner of a written element not
      executing the statement ([E0607]), divergent replicated execution
      ([E0608]), dangling communication descriptor ([E0609]), a
      decisions-mandated transfer missing from the lowered IR ([E0610]),
      lowered guards/allocations/reductions diverging from the mapping
      decisions ([E0611]), a path-sensitive stale or uninitialized read
      in the lowered IR ([E0612])
    - [W0601]-[W0699] static-verifier lint warnings: inconsistent
      mappings across a phi ([W0601]), redundant replicated write
      ([W0602]), redundant communication ([W0603]), unvectorized
      inner-loop communication ([W0604]), a lowered transfer with no
      decisions-level justification ([W0605]), a dead transfer whose
      payload is never read ([W0606]), a transfer of data already valid
      at every destination ([W0607]), a statically empty or subsumed
      guard predicate ([W0608])
    - [E0701] runtime error during interpretation (bad subscript, fuel
      exhaustion, uninitialised read), surfaced at the CLI boundary
    - [E0702] invalid fault-injection spec ([phpfc simulate --faults])
    - [E0703] unrecoverable injected fault: the message runtime's retry
      budget was exhausted before delivery
    - [E0704] statement-instance budget exhausted ([phpfc simulate
      --fuel]); the diagnostic carries the statement that ran out
    - [E0801]-[E0806] strict SPMD lowering errors ([lower-spmd] pass):
      alignment chain deeper than the privatization bound or cyclic
      ([E0801]), communication anchored at a statement that does not
      exist ([E0802]), placement level outside the enclosing loop nest
      ([E0803]), subscripted reference to an undeclared array ([E0804]),
      reduction whose accumulating statement is missing ([E0805]),
      replication dimension outside the processor grid's rank
      ([E0806]) *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  code : string;  (** stable machine-readable code, e.g. ["E0301"] *)
  loc : Loc.t option;  (** position, when the phase tracks one *)
  message : string;
}

(** Raised by phases on unrecoverable errors; caught at pass
    boundaries.  Never escapes {!Phpf_core.Compiler.compile} or the
    [phpfc] CLI. *)
exception Fatal of t list

val make : ?severity:severity -> ?loc:Loc.t -> code:string -> string -> t
val error : ?loc:Loc.t -> code:string -> string -> t
val warning : ?loc:Loc.t -> code:string -> string -> t
val note : ?loc:Loc.t -> code:string -> string -> t

val errorf :
  ?loc:Loc.t -> code:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  ?loc:Loc.t -> code:string -> ('a, Format.formatter, unit, t) format4 -> 'a

(** Format a message and raise {!Fatal} with a single error. *)
val failf :
  ?loc:Loc.t -> code:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val is_error : t -> bool
val severity_to_string : severity -> string
val pp_severity : Format.formatter -> severity -> unit

(** One-line rendering: [FILE:LINE:COL: error[CODE]: message] (location
    omitted when absent) — the single renderer shared by the CLI and the
    tests. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Render each diagnostic of the list on its own line. *)
val pp_list : Format.formatter -> t list -> unit
