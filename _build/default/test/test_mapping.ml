(* Tests for hpf_mapping: grids, distribution math, layout resolution,
   ownership specs and AlignLevel. *)

open Hpf_lang
open Hpf_analysis
open Hpf_mapping

let check = Alcotest.check
let fail = Alcotest.fail

let parse src = Sema.check (Parser.parse_string src)

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_linearize_roundtrip () =
  let g = Grid.make [ 3; 4; 2 ] in
  check Alcotest.int "size" 24 (Grid.size g);
  for pid = 0 to 23 do
    check Alcotest.int
      (Fmt.str "roundtrip %d" pid)
      pid
      (Grid.linearize g (Grid.coords g pid))
  done

let test_grid_line () =
  let g = Grid.make [ 2; 3 ] in
  let line = Grid.line g [| 1; 0 |] 1 in
  check (Alcotest.list Alcotest.int) "line along dim 1" [ 3; 4; 5 ] line;
  let col = Grid.line g [| 1; 2 |] 0 in
  check (Alcotest.list Alcotest.int) "line along dim 0" [ 2; 5 ] col

let test_grid_factorize () =
  check (Alcotest.list Alcotest.int) "16 -> 4x4" [ 4; 4 ]
    (Grid.factorize ~rank:2 16);
  check (Alcotest.list Alcotest.int) "8 -> 4x2" [ 4; 2 ]
    (Grid.factorize ~rank:2 8);
  check (Alcotest.list Alcotest.int) "2 -> 2x1" [ 2; 1 ]
    (Grid.factorize ~rank:2 2);
  List.iter
    (fun p ->
      let f = Grid.factorize ~rank:2 p in
      check Alcotest.int
        (Fmt.str "product %d" p)
        p
        (List.fold_left ( * ) 1 f))
    [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 60 ]

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let test_dist_block () =
  let f = Dist.Block 4 in
  check Alcotest.int "pos 0" 0 (Dist.owner_coord f ~nprocs:4 0);
  check Alcotest.int "pos 3" 0 (Dist.owner_coord f ~nprocs:4 3);
  check Alcotest.int "pos 4" 1 (Dist.owner_coord f ~nprocs:4 4);
  check Alcotest.int "pos 15" 3 (Dist.owner_coord f ~nprocs:4 15);
  check Alcotest.int "pos 17 clamps" 3 (Dist.owner_coord f ~nprocs:4 17)

let test_dist_cyclic () =
  let f = Dist.Cyclic in
  check Alcotest.int "pos 0" 0 (Dist.owner_coord f ~nprocs:3 0);
  check Alcotest.int "pos 4" 1 (Dist.owner_coord f ~nprocs:3 4);
  check Alcotest.int "pos 5" 2 (Dist.owner_coord f ~nprocs:3 5)

let test_dist_block_cyclic () =
  let f = Dist.Block_cyclic 2 in
  check Alcotest.int "pos 0" 0 (Dist.owner_coord f ~nprocs:2 0);
  check Alcotest.int "pos 1" 0 (Dist.owner_coord f ~nprocs:2 1);
  check Alcotest.int "pos 2" 1 (Dist.owner_coord f ~nprocs:2 2);
  check Alcotest.int "pos 4" 0 (Dist.owner_coord f ~nprocs:2 4)

let test_dist_local_count_sums () =
  List.iter
    (fun (f, nprocs, extent) ->
      let total = ref 0 in
      for c = 0 to nprocs - 1 do
        total := !total + Dist.local_count f ~nprocs ~extent c
      done;
      match f with
      | Dist.Block_cyclic _ ->
          check Alcotest.bool "covers" true (!total >= extent)
      | _ -> check Alcotest.int "sums to extent" extent !total)
    [
      (Dist.Block 4, 4, 16);
      (Dist.Block 5, 4, 17);
      (Dist.Cyclic, 3, 10);
      (Dist.Cyclic, 4, 16);
      (Dist.Block_cyclic 2, 2, 12);
    ]

let test_dist_of_ast () =
  check Alcotest.bool "block size ceil" true
    (Dist.of_ast_format ~extent:10 ~nprocs:4 Ast.Block = Some (Dist.Block 3));
  check Alcotest.bool "star collapses" true
    (Dist.of_ast_format ~extent:10 ~nprocs:4 Ast.Star = None)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let env_of src = Layout.resolve (parse src)

let test_layout_distribute () =
  let env =
    env_of
      {|
program t
real a(16,16)
!hpf$ processors p(2,2)
!hpf$ distribute a(block, cyclic) onto p
end
|}
  in
  let l = Layout.layout_of env "a" in
  check Alcotest.bool "partitioned" true (Layout.is_partitioned l);
  match l.Layout.bindings with
  | [| Layout.Mapped m0; Layout.Mapped m1 |] ->
      check Alcotest.int "dim0" 0 m0.array_dim;
      check Alcotest.bool "block 8" true (m0.fmt = Dist.Block 8);
      check Alcotest.int "dim1" 1 m1.array_dim;
      check Alcotest.bool "cyclic" true (m1.fmt = Dist.Cyclic)
  | _ -> fail "bindings shape"

let test_layout_star_dim () =
  let env =
    env_of
      {|
program t
real a(16,16)
!hpf$ processors p(2)
!hpf$ distribute a(*, block) onto p
end
|}
  in
  let l = Layout.layout_of env "a" in
  match l.Layout.bindings with
  | [| Layout.Mapped m |] ->
      check Alcotest.int "second dim selects" 1 m.array_dim
  | _ -> fail "one grid dim"

let test_layout_align_identity () =
  let env =
    env_of
      {|
program t
real a(16), b(16)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
!hpf$ align b(i) with a(i)
end
|}
  in
  let la = Layout.layout_of env "a" and lb = Layout.layout_of env "b" in
  check Alcotest.bool "same binding" true
    (la.Layout.bindings = lb.Layout.bindings)

let test_layout_align_offset () =
  let env =
    env_of
      {|
program t
real a(16), b(16)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
!hpf$ align b(i) with a(i + 2)
end
|}
  in
  match (Layout.layout_of env "b").Layout.bindings with
  | [| Layout.Mapped m |] ->
      check Alcotest.int "offset 2" 2 m.offset;
      check Alcotest.int "stride 1" 1 m.stride
  | _ -> fail "binding"

let test_layout_align_star_replicates () =
  let env =
    env_of
      {|
program t
real a(16), e(16)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
!hpf$ align e(i) with a(*)
end
|}
  in
  check Alcotest.bool "replicated" true
    (Layout.is_fully_replicated (Layout.layout_of env "e"))

let test_layout_align_const_fixes () =
  let env =
    env_of
      {|
program t
real a(16), w(8)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
!hpf$ align w(i) with a(9)
end
|}
  in
  match (Layout.layout_of env "w").Layout.bindings with
  | [| Layout.Fixed 2 |] -> ()
  | [| b |] -> fail (Fmt.str "expected Fixed 2, got %a" Layout.pp_binding b)
  | _ -> fail "rank"

let test_layout_align_chain () =
  let env =
    env_of
      {|
program t
real a(16), b(16), c(16)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
!hpf$ align c(i) with b(i + 1)
!hpf$ align b(i) with a(i + 1)
end
|}
  in
  match (Layout.layout_of env "c").Layout.bindings with
  | [| Layout.Mapped m |] -> check Alcotest.int "composed offset" 2 m.offset
  | _ -> fail "binding"

let test_layout_undistributed_replicated () =
  let env =
    env_of
      {|
program t
real a(16), z(16)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
end
|}
  in
  check Alcotest.bool "z replicated" true
    (Layout.is_fully_replicated (Layout.layout_of env "z"))

let test_layout_grid_override () =
  let p =
    parse
      {|
program t
real a(16)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
end
|}
  in
  let env = Layout.resolve ~grid_override:[ 8 ] p in
  check Alcotest.int "overridden" 8 (Grid.size env.Layout.grid)

(* ------------------------------------------------------------------ *)
(* Ownership                                                           *)
(* ------------------------------------------------------------------ *)

let fig1_env () =
  let p = Sema.check (Hpf_benchmarks.Fig_examples.fig1 ~n:100 ~p:4 ()) in
  (p, Layout.resolve p)

let test_ownership_concrete () =
  let _, env = fig1_env () in
  check (Alcotest.list Alcotest.int) "a(1) on p0" [ 0 ]
    (Ownership.owner_pids env "a" [| 1 |]);
  check (Alcotest.list Alcotest.int) "a(26) on p1" [ 1 ]
    (Ownership.owner_pids env "a" [| 26 |]);
  check (Alcotest.list Alcotest.int) "a(100) on p3" [ 3 ]
    (Ownership.owner_pids env "a" [| 100 |]);
  check (Alcotest.list Alcotest.int) "e replicated" [ 0; 1; 2; 3 ]
    (Ownership.owner_pids env "e" [| 7 |])

let test_ownership_spec_affine () =
  let _, env = fig1_env () in
  let spec =
    Ownership.owner_spec env ~indices:[ "i" ] "a"
      [ Ast.Bin (Add, Var "i", Int 1) ]
  in
  match spec with
  | [| Ownership.O_affine { pos; _ } |] ->
      check Alcotest.int "coeff" 1 (Affine.coeff pos "i");
      check Alcotest.int "const" 0 pos.Affine.const
  | _ -> fail "affine spec"

let test_ownership_relate_same_shift () =
  let _, env = fig1_env () in
  let s1 = Ownership.owner_spec env ~indices:[ "i" ] "a" [ Ast.Var "i" ] in
  let s2 = Ownership.owner_spec env ~indices:[ "i" ] "b" [ Ast.Var "i" ] in
  let s3 =
    Ownership.owner_spec env ~indices:[ "i" ] "a"
      [ Ast.Bin (Add, Var "i", Int 1) ]
  in
  check Alcotest.bool "aligned: same" true
    (Ownership.no_comm (Ownership.relate s1 s2));
  (match Ownership.relate s1 s3 with
  | [| Ownership.Shift 1 |] -> ()
  | _ -> fail "shift +1");
  let rep = Ownership.owner_spec env ~indices:[ "i" ] "e" [ Ast.Var "i" ] in
  check Alcotest.bool "replicated producer: local" true
    (Ownership.no_comm (Ownership.relate rep s1))

let test_ownership_to_all () =
  let _, env = fig1_env () in
  let s1 = Ownership.owner_spec env ~indices:[ "i" ] "a" [ Ast.Var "i" ] in
  let all = Ownership.all_procs env in
  match Ownership.relate s1 all with
  | [| Ownership.To_all |] -> ()
  | _ -> fail "to_all"

let test_ownership_unknown_subscript () =
  let p =
    parse
      {|
program t
real a(16)
integer w(16)
real x
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
do i = 1, 16
  x = a(w(i))
end do
end
|}
  in
  let env = Layout.resolve p in
  let spec =
    Ownership.owner_spec env ~indices:[ "i" ] "a"
      [ Ast.Arr ("w", [ Ast.Var "i" ]) ]
  in
  match spec with [| Ownership.O_unknown |] -> () | _ -> fail "unknown"

let test_ownership_single_proc_local () =
  let p =
    parse
      {|
program t
real a(16)
!hpf$ processors p(1)
!hpf$ distribute a(block) onto p
end
|}
  in
  let env = Layout.resolve p in
  let s1 = Ownership.owner_spec env ~indices:[ "i" ] "a" [ Ast.Var "i" ] in
  let s2 =
    Ownership.owner_spec env ~indices:[ "i" ] "a"
      [ Ast.Bin (Add, Var "i", Int 1) ]
  in
  check Alcotest.bool "P=1: no comm" true
    (Ownership.no_comm (Ownership.relate s1 s2))

let test_ownership_owns () =
  let _, env = fig1_env () in
  check Alcotest.bool "p0 owns a(10)" true (Ownership.owns env "a" [| 10 |] 0);
  check Alcotest.bool "p1 does not own a(10)" false
    (Ownership.owns env "a" [| 10 |] 1)

(* ------------------------------------------------------------------ *)
(* AlignLevel (paper Fig. 4)                                           *)
(* ------------------------------------------------------------------ *)

let test_align_level_fig4 () =
  let p = Sema.check (Hpf_benchmarks.Fig_examples.fig4 ()) in
  let env = Layout.resolve p in
  let nest = Nest.build p in
  let a_sid = ref 0 and b_sid = ref 0 in
  Ast.iter_program
    (fun s ->
      match s.node with
      | Ast.Assign (Ast.LArr ("a", _), _) -> a_sid := s.sid
      | Ast.Assign (Ast.LArr ("b", _), _) -> b_sid := s.sid
      | _ -> ())
    p;
  let a_ref =
    { Aref.sid = !a_sid; base = "a"; subs = [ Ast.Var "i"; Ast.Var "j"; Ast.Var "k" ] }
  in
  let b_ref =
    { Aref.sid = !b_sid; base = "b"; subs = [ Ast.Var "s"; Ast.Var "j"; Ast.Var "k" ] }
  in
  check Alcotest.int "AlignLevel a(i,j,k) = 2" 2
    (Align_level.align_level env nest a_ref);
  check Alcotest.int "AlignLevel b(s,j,k) = 3" 3
    (Align_level.align_level env nest b_ref)

let test_var_level () =
  let p = Sema.check (Hpf_benchmarks.Fig_examples.fig4 ()) in
  let nest = Nest.build p in
  let b_sid = ref 0 in
  Ast.iter_program
    (fun s ->
      match s.node with
      | Ast.Assign (Ast.LArr ("b", _), _) -> b_sid := s.sid
      | _ -> ())
    p;
  check Alcotest.int "VarLevel(k) = 3" 3
    (Align_level.var_level p nest ~sid:!b_sid "k");
  check Alcotest.int "VarLevel(s) = 2 (assigned in j loop)" 2
    (Align_level.var_level p nest ~sid:!b_sid "s");
  check Alcotest.int "VarLevel(n) = 0 (parameter)" 0
    (Align_level.var_level p nest ~sid:!b_sid "n")

let test_subscript_align_level () =
  let p = Sema.check (Hpf_benchmarks.Fig_examples.fig4 ()) in
  let nest = Nest.build p in
  let b_sid = ref 0 in
  Ast.iter_program
    (fun s ->
      match s.node with
      | Ast.Assign (Ast.LArr ("b", _), _) -> b_sid := s.sid
      | _ -> ())
    p;
  check Alcotest.int "SAL(j) = 2" 2
    (Align_level.subscript_align_level p nest ~sid:!b_sid (Ast.Var "j"));
  check Alcotest.int "SAL(s) = 3" 3
    (Align_level.subscript_align_level p nest ~sid:!b_sid (Ast.Var "s"))

let test_partial_align_level_fig6 () =
  let p = Sema.check (Hpf_benchmarks.Fig_examples.fig6 ()) in
  let env = Layout.resolve p in
  let nest = Nest.build p in
  let rsd_sid = ref 0 in
  Ast.iter_program
    (fun s ->
      match s.node with
      | Ast.Assign (Ast.LArr ("rsd", _), _) when !rsd_sid = 0 ->
          rsd_sid := s.sid
      | _ -> ())
    p;
  let r =
    {
      Aref.sid = !rsd_sid;
      base = "rsd";
      subs = [ Ast.Var "i"; Ast.Var "j"; Ast.Var "k" ];
    }
  in
  let full = Align_level.align_level env nest r in
  let restricted = Align_level.align_level ~grid_dims:[ 1 ] env nest r in
  check Alcotest.bool "restricted < full" true (restricted < full);
  check Alcotest.int "full = 3 (j at level 3)" 3 full;
  check Alcotest.int "restricted = 2 (k at level 2)" 2 restricted

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Memory footprint (Layout.local_elems)                               *)
(* ------------------------------------------------------------------ *)

let test_local_elems_block_cyclic () =
  let env =
    env_of
      {|
program t
real a(16,12)
!hpf$ processors p(2,3)
!hpf$ distribute a(block, cyclic) onto p
end
|}
  in
  (* dim0: block of 8 over 2 coords; dim1: cyclic 12 over 3 coords = 4 *)
  List.iter
    (fun coords ->
      check Alcotest.int
        (Fmt.str "local at (%d,%d)" coords.(0) coords.(1))
        (8 * 4)
        (Layout.local_elems env "a" coords))
    [ [| 0; 0 |]; [| 1; 2 |]; [| 0; 1 |] ]

let test_local_elems_replicated_full () =
  let env =
    env_of
      {|
program t
real a(16), z(10,10)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
end
|}
  in
  check Alcotest.int "replicated z is full everywhere" 100
    (Layout.local_elems env "z" [| 2 |]);
  ()

let test_max_local_elems () =
  let env =
    env_of
      {|
program t
real a(17)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
end
|}
  in
  (* block size ceil(17/4) = 5; the last processor holds the overflow:
     max is 5 *)
  check Alcotest.int "max over procs" 5 (Layout.max_local_elems env)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mapping"
    [
      ( "grid",
        [
          Alcotest.test_case "linearize roundtrip" `Quick
            test_grid_linearize_roundtrip;
          Alcotest.test_case "line" `Quick test_grid_line;
          Alcotest.test_case "factorize" `Quick test_grid_factorize;
        ] );
      ( "dist",
        [
          Alcotest.test_case "block" `Quick test_dist_block;
          Alcotest.test_case "cyclic" `Quick test_dist_cyclic;
          Alcotest.test_case "block-cyclic" `Quick test_dist_block_cyclic;
          Alcotest.test_case "local counts" `Quick test_dist_local_count_sums;
          Alcotest.test_case "of ast" `Quick test_dist_of_ast;
        ] );
      ( "layout",
        [
          Alcotest.test_case "distribute" `Quick test_layout_distribute;
          Alcotest.test_case "star dim" `Quick test_layout_star_dim;
          Alcotest.test_case "align identity" `Quick test_layout_align_identity;
          Alcotest.test_case "align offset" `Quick test_layout_align_offset;
          Alcotest.test_case "align star" `Quick
            test_layout_align_star_replicates;
          Alcotest.test_case "align const" `Quick test_layout_align_const_fixes;
          Alcotest.test_case "align chain" `Quick test_layout_align_chain;
          Alcotest.test_case "undistributed replicated" `Quick
            test_layout_undistributed_replicated;
          Alcotest.test_case "grid override" `Quick test_layout_grid_override;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "concrete" `Quick test_ownership_concrete;
          Alcotest.test_case "affine spec" `Quick test_ownership_spec_affine;
          Alcotest.test_case "relate same/shift" `Quick
            test_ownership_relate_same_shift;
          Alcotest.test_case "to all" `Quick test_ownership_to_all;
          Alcotest.test_case "unknown subscript" `Quick
            test_ownership_unknown_subscript;
          Alcotest.test_case "single proc local" `Quick
            test_ownership_single_proc_local;
          Alcotest.test_case "owns" `Quick test_ownership_owns;
        ] );
      ( "memory",
        [
          Alcotest.test_case "block x cyclic" `Quick
            test_local_elems_block_cyclic;
          Alcotest.test_case "replicated full" `Quick
            test_local_elems_replicated_full;
          Alcotest.test_case "max over procs" `Quick test_max_local_elems;
        ] );
      ( "align-level",
        [
          Alcotest.test_case "fig4" `Quick test_align_level_fig4;
          Alcotest.test_case "var level" `Quick test_var_level;
          Alcotest.test_case "subscript align level" `Quick
            test_subscript_align_level;
          Alcotest.test_case "partial restriction (fig6)" `Quick
            test_partial_align_level_fig6;
        ] );
    ]
