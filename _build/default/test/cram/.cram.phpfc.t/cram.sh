  $ ../../bin/phpfc.exe compile ../../examples/programs/fig1.hpfk
  $ ../../bin/phpfc.exe compile ../../examples/programs/fig1.hpfk --producer-align | grep 'x  '
  $ ../../bin/phpfc.exe validate ../../examples/programs/fig1.hpfk
  $ ../../bin/phpfc.exe compile ../../examples/programs/fig7.hpfk | tail -n 4
  $ ../../bin/phpfc.exe compile ../../examples/programs/workspace.hpfk | grep -c broadcast
  $ ../../bin/phpfc.exe compile ../../examples/programs/workspace.hpfk --auto-array-priv | grep -c broadcast
  $ ../../bin/phpfc.exe print ../../examples/programs/fig7.hpfk
  $ cat > bad.hpfk <<'SRC'
  > program bad
  > x = 1.0
  > end
  > SRC
  $ ../../bin/phpfc.exe compile bad.hpfk
  $ ../../bin/phpfc.exe sweep ../../examples/programs/stencil.hpfk --sweep-procs 1,4
  $ ../../bin/phpfc.exe compile ../../examples/programs/stencil.hpfk --annotate | sed -n '9,20p'
  $ ../../bin/phpfc.exe compile ../../examples/programs/appsp2d.hpfk | grep -A1 'array privatization'
  $ ../../bin/phpfc.exe compile ../../examples/programs/fig2.hpfk --annotate | sed -n '16,25p'
