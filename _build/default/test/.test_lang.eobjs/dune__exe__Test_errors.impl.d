test/test_errors.ml: Alcotest Float Grid Hpf_benchmarks Hpf_lang Hpf_mapping Hpf_spmd Init Layout List Memory Parser Phpf_core Sema Seq_interp Trace_sim Value
