test/test_interp.ml: Alcotest Ast Eval Fmt Hpf_lang Hpf_spmd Init List Memory Parser Sema Seq_interp Value
