test/test_lang.ml: Alcotest Ast Fmt Hpf_benchmarks Hpf_lang Lexer List Loc Nest Parser Pp Sema
