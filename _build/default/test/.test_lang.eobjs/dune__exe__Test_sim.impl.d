test/test_sim.ml: Alcotest Compiler Fmt Hpf_benchmarks Hpf_lang Hpf_spmd Init List Parser Phpf_core Sema Trace_sim Variants
