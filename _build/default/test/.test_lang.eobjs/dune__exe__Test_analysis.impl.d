test/test_analysis.ml: Affine Alcotest Array Ast Cfg Constprop Depend Dom Fmt Hashtbl Hpf_analysis Hpf_benchmarks Hpf_lang Induction List Liveness Nest Parser Pp Privatizable Reduction Sema Ssa Trips
