test/test_auto_priv.mli:
