test/test_benchmarks.ml: Alcotest Dgefa Float Fmt Hpf_benchmarks Hpf_spmd Lazy List Phpf_core Tables Tomcatv
