test/test_paper_figures.mli:
