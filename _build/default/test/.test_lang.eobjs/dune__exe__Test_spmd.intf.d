test/test_spmd.mli:
