test/test_expansion.ml: Alcotest Ast Compiler Expansion Fig_examples Fmt Hpf_benchmarks Hpf_lang Hpf_spmd Init List Memory Parser Phpf_core Sema Seq_interp Spmd_interp Trace_sim Types Value
