test/test_auto_priv.ml: Alcotest Aref Auto_priv Compiler Decisions Fmt Hashtbl Hpf_analysis Hpf_lang Hpf_spmd List Parser Phpf_core Sema
