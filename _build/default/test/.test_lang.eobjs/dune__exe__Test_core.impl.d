test/test_core.ml: Affine Alcotest Align_level Aref Array Ast Compiler Decisions Fmt Hashtbl Hpf_analysis Hpf_benchmarks Hpf_lang Hpf_mapping List Ownership Parser Phpf_core Report Sema Ssa String
