test/test_spmd.ml: Alcotest Appsp Compiler Dgefa Fig_examples Fmt Hpf_benchmarks Hpf_lang Hpf_spmd Init List Phpf_core Sema Spmd_interp Tomcatv Variants
