test/test_mapping.ml: Affine Alcotest Align_level Aref Array Ast Dist Fmt Grid Hpf_analysis Hpf_benchmarks Hpf_lang Hpf_mapping Layout List Nest Ownership Parser Sema
