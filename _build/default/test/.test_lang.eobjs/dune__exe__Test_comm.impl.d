test/test_comm.ml: Alcotest Aref Ast Comm Cost_model Fmt Hpf_analysis Hpf_benchmarks Hpf_comm Hpf_lang List Nest Parser Phpf_core Sema Vectorize
