(* phpfc — compile kernel-language (HPF subset) programs, report the
   privatization mapping decisions and communication schedule, and run
   them on the SP2-like machine simulator. *)

open Cmdliner
open Hpf_lang
open Phpf_core
open Hpf_spmd

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let parse_program path =
  try Parser.parse_file path with
  | Lexer.Lex_error (loc, msg) ->
      Fmt.epr "lexical error at %a: %s@." Loc.pp loc msg;
      exit 1
  | Parser.Parse_error (loc, msg) ->
      Fmt.epr "syntax error at %a: %s@." Loc.pp loc msg;
      exit 1

let compile_program ?grid_override ?options path =
  let p = parse_program path in
  try Compiler.compile ?grid_override ?options p with
  | Sema.Sema_error msg ->
      Fmt.epr "semantic error: %s@." msg;
      exit 1
  | Hpf_mapping.Layout.Mapping_error msg ->
      Fmt.epr "mapping error: %s@." msg;
      exit 1

(* ---------------- common options ---------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Kernel-language source file (.hpfk).")

let procs_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "procs"; "p" ] ~docv:"P1,P2,..."
        ~doc:
          "Override the processor grid extents declared by the program's \
           PROCESSORS directive.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Debug logging.")

let opt_flags =
  let no_scalar =
    Arg.(
      value & flag
      & info [ "no-scalar-priv" ]
          ~doc:"Disable scalar privatization (replicate all scalars).")
  in
  let producer =
    Arg.(
      value & flag
      & info [ "producer-align" ]
          ~doc:
            "Always align privatized scalars with a producer reference \
             (skip consumer selection).")
  in
  let no_red =
    Arg.(
      value & flag
      & info [ "no-reduction-align" ]
          ~doc:"Disable the reduction-accumulator mapping of paper §2.3.")
  in
  let no_arr =
    Arg.(
      value & flag
      & info [ "no-array-priv" ] ~doc:"Disable array privatization.")
  in
  let no_partial =
    Arg.(
      value & flag
      & info [ "no-partial-priv" ] ~doc:"Disable partial privatization.")
  in
  let no_ctrl =
    Arg.(
      value & flag
      & info [ "no-ctrl-priv" ]
          ~doc:"Disable privatized execution of control flow.")
  in
  let auto_arr =
    Arg.(
      value & flag
      & info [ "auto-array-priv" ]
          ~doc:
            "Enable automatic (directive-free) array privatization — the \
             paper's future-work extension.")
  in
  let combine =
    Arg.(
      value & flag
      & info [ "combine-messages" ]
          ~doc:
            "Enable global message combining (communications sharing a \
             placement point pay the startup latency once) — the \
             optimization the paper notes phpf lacked.")
  in
  let mk no_scalar producer no_red no_arr no_partial no_ctrl auto_arr
      combine =
    {
      Decisions.privatize_scalars = not no_scalar;
      force_producer_alignment = producer;
      reduction_alignment = not no_red;
      privatize_arrays = not no_arr;
      partial_privatization = not no_partial;
      privatize_control = not no_ctrl;
      auto_array_priv = auto_arr;
      combine_messages = combine;
    }
  in
  Term.(
    const mk $ no_scalar $ producer $ no_red $ no_arr $ no_partial $ no_ctrl
    $ auto_arr $ combine)

(* ---------------- commands ---------------- *)

let compile_cmd =
  let run file procs options annotate verbose =
    setup_logs verbose;
    let c = compile_program ?grid_override:procs ~options file in
    if annotate then Fmt.pr "%a@?" Report.pp_annotated c
    else Fmt.pr "%a@?" Report.pp_compiled c
  in
  let annotate_arg =
    Arg.(
      value & flag
      & info [ "annotate" ]
          ~doc:
            "Print the program source annotated with each statement's \
             guard and communications instead of the summary report.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and report mapping decisions.")
    Term.(
      const run $ file_arg $ procs_arg $ opt_flags $ annotate_arg
      $ verbose_arg)

let simulate_cmd =
  let run file procs options verbose =
    setup_logs verbose;
    let c = compile_program ?grid_override:procs ~options file in
    let result, _mem = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
    Fmt.pr "%a@." Trace_sim.pp_result result
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run on the SP2-like timing simulator and report times.")
    Term.(const run $ file_arg $ procs_arg $ opt_flags $ verbose_arg)

let validate_cmd =
  let run file procs options verbose =
    setup_logs verbose;
    let c = compile_program ?grid_override:procs ~options file in
    let st = Spmd_interp.run ~init:(Init.init c.Compiler.prog) c in
    match Spmd_interp.validate st with
    | [] ->
        Fmt.pr "OK: SPMD execution matches sequential reference (%d element transfers)@."
          st.Spmd_interp.transfers;
    | ms ->
        List.iter (fun m -> Fmt.pr "MISMATCH %a@." Spmd_interp.pp_mismatch m) ms;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Execute per-processor with explicit data movement and check \
          owned data against the sequential reference.")
    Term.(const run $ file_arg $ procs_arg $ opt_flags $ verbose_arg)

let sweep_cmd =
  let run file procs_list options verbose =
    setup_logs verbose;
    Fmt.pr "%6s %12s %10s %12s %10s@." "P" "time (s)" "speedup" "efficiency"
      "comm (s)";
    let base = ref None in
    List.iter
      (fun p ->
        let c = compile_program ~grid_override:[ p ] ~options file in
        let r, _ =
          Hpf_spmd.Trace_sim.run
            ~init:(Hpf_spmd.Init.init c.Compiler.prog)
            c
        in
        let t = r.Hpf_spmd.Trace_sim.time in
        let t1 =
          match !base with
          | None ->
              base := Some t;
              t
          | Some t1 -> t1
        in
        Fmt.pr "%6d %12.4f %10.2f %11.0f%% %10.4f@." p t (t1 /. t)
          (100.0 *. t1 /. t /. float_of_int p)
          r.Hpf_spmd.Trace_sim.comm_time)
      procs_list
  in
  let procs_list =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "sweep-procs" ] ~docv:"P1,P2,..."
          ~doc:"Processor counts to sweep (1-D grid).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Simulate across processor counts and print a scaling table.")
    Term.(const run $ file_arg $ procs_list $ opt_flags $ verbose_arg)

let print_cmd =
  let run file =
    let p = parse_program file in
    let p = Sema.check p in
    Fmt.pr "%s@?" (Pp.program_to_string p)
  in
  Cmd.v
    (Cmd.info "print" ~doc:"Parse, check and pretty-print a program.")
    Term.(const run $ file_arg)

let () =
  let doc = "prototype HPF compiler with privatization of variables" in
  let info = Cmd.info "phpfc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; simulate_cmd; validate_cmd; sweep_cmd; print_cmd ]))
