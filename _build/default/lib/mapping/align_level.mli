(** [VarLevel], [SubscriptAlignLevel] and [AlignLevel] (paper §2.2,
    Fig. 4): the loop-nesting scope within which an alignment with a
    given reference is well defined. *)

open Hpf_lang
open Hpf_analysis

(** Innermost enclosing-loop level at which variable [v] varies at
    statement [sid]: its own level for a loop index, the level of the
    deepest enclosing loop assigning it for a scalar, 0 when it never
    varies (constants, parameters). *)
val var_level : Ast.program -> Nest.t -> sid:Ast.stmt_id -> string -> int

(** [VarLevel(s)] when [s] is affine in the loop indices,
    [VarLevel(s) + 1] otherwise. *)
val subscript_align_level :
  Ast.program -> Nest.t -> sid:Ast.stmt_id -> Ast.expr -> int

(** Array dimensions of [base] selected by [Mapped] bindings; with
    [grid_dims], only bindings on those grid dimensions count (partial
    privatization restricts the computation this way, paper §3.2). *)
val partitioned_array_dims :
  ?grid_dims:int list -> Layout.env -> string -> int list

(** Max [SubscriptAlignLevel] over the subscripts in partitioned
    dimensions of the reference (0 when none are partitioned).  An
    alignment with the reference is valid only inside the loop at this
    level. *)
val align_level : ?grid_dims:int list -> Layout.env -> Nest.t -> Aref.t -> int
