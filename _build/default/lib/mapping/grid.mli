(** Processor grids (HPF [PROCESSORS] arrangements): rectangular
    arrangements with 0-based per-dimension coordinates, numbered
    row-major. *)

type t = { name : string; extents : int array }

(** @raise Invalid_argument when an extent is < 1. *)
val make : ?name:string -> int list -> t

val rank : t -> int
val size : t -> int
val extent : t -> int -> int

(** Linear processor id of a coordinate vector (row-major). *)
val linearize : t -> int array -> int

(** Coordinates of a linear processor id (inverse of {!linearize}). *)
val coords : t -> int -> int array

(** All coordinate vectors, in linear-id order. *)
val all_coords : t -> int array list

(** Processors sharing coordinates with [coord] everywhere except
    dimension [dim] — the grid "line" along [dim]. *)
val line : t -> int array -> int -> int list

(** A near-square factorization of [p] into [rank] extents, largest
    first — for "P processors" on a multi-dimensional grid. *)
val factorize : rank:int -> int -> int list

val pp : Format.formatter -> t -> unit
