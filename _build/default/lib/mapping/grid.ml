(** Processor grids (HPF [PROCESSORS] arrangements).

    A grid is a rectangular arrangement of processors; coordinates are
    0-based per dimension.  Processors are numbered 0..size-1 in
    row-major order of coordinates. *)

type t = { name : string; extents : int array }

let make ?(name = "procs") extents =
  if List.exists (fun e -> e < 1) extents then
    invalid_arg "Grid.make: extents must be >= 1";
  { name; extents = Array.of_list extents }

let rank (g : t) = Array.length g.extents

let size (g : t) = Array.fold_left ( * ) 1 g.extents

let extent (g : t) (dim : int) = g.extents.(dim)

(** Linear processor id of a coordinate vector (row-major). *)
let linearize (g : t) (coord : int array) : int =
  let r = rank g in
  assert (Array.length coord = r);
  let id = ref 0 in
  for d = 0 to r - 1 do
    assert (coord.(d) >= 0 && coord.(d) < g.extents.(d));
    id := (!id * g.extents.(d)) + coord.(d)
  done;
  !id

(** Coordinates of a linear processor id. *)
let coords (g : t) (pid : int) : int array =
  let r = rank g in
  let c = Array.make r 0 in
  let rem = ref pid in
  for d = r - 1 downto 0 do
    c.(d) <- !rem mod g.extents.(d);
    rem := !rem / g.extents.(d)
  done;
  c

(** All coordinate vectors, in linear-id order. *)
let all_coords (g : t) : int array list =
  List.init (size g) (coords g)

(** Processors sharing coordinates with [coord] in all dimensions except
    [dim] — the "line" of the grid along [dim] through [coord]. *)
let line (g : t) (coord : int array) (dim : int) : int list =
  List.init (extent g dim) (fun k ->
      let c = Array.copy coord in
      c.(dim) <- k;
      linearize g c)

(** A near-square factorization of [p] into [rank] extents (largest dim
    first), used when an experiment wants "P processors" on a
    multi-dimensional grid. *)
let factorize ~(rank : int) (p : int) : int list =
  if rank <= 0 then invalid_arg "Grid.factorize: rank must be >= 1";
  if p < 1 then invalid_arg "Grid.factorize: p must be >= 1";
  let rec split rank p =
    if rank = 1 then [ p ]
    else begin
      (* largest divisor of p that is <= ceil(p^(1/rank)) ... simple scan
         from the integer root downward *)
      let target =
        int_of_float (Float.round (Float.pow (float_of_int p) (1.0 /. float_of_int rank)))
      in
      let rec find d = if d <= 1 then 1 else if p mod d = 0 then d else find (d - 1) in
      let d = find (max target 1) in
      d :: split (rank - 1) (p / d)
    end
  in
  List.sort (fun a b -> compare b a) (split rank p)

let pp ppf (g : t) =
  Fmt.pf ppf "%s(%a)" g.name
    Fmt.(list ~sep:(any ", ") int)
    (Array.to_list g.extents)
