lib/mapping/ownership.mli: Affine Ast Dist Format Hpf_analysis Hpf_lang Layout
