lib/mapping/layout.ml: Array Ast Dist Fmt Fun Grid Hashtbl Hpf_lang List String Types
