lib/mapping/dist.mli: Format Hpf_lang
