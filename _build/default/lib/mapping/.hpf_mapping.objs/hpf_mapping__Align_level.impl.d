lib/mapping/align_level.ml: Affine Aref Array Ast Hpf_analysis Hpf_lang Layout List Nest String
