lib/mapping/align_level.mli: Aref Ast Hpf_analysis Hpf_lang Layout Nest
