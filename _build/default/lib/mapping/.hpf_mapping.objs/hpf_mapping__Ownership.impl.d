lib/mapping/ownership.ml: Affine Array Ast Dist Fmt Grid Hpf_analysis Hpf_lang Layout List
