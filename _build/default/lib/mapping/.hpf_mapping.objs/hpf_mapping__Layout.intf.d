lib/mapping/layout.mli: Ast Dist Format Grid Hashtbl Hpf_lang
