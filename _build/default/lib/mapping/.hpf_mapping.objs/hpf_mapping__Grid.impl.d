lib/mapping/grid.ml: Array Float Fmt List
