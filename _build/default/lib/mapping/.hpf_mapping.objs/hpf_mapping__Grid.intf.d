lib/mapping/grid.mli: Format
