lib/mapping/dist.ml: Fmt Hpf_lang
