(** [VarLevel], [SubscriptAlignLevel] and [AlignLevel] (paper §2.2, Fig. 4).

    [VarLevel(s)] is the innermost loop nesting level in which subscript
    [s] varies in value.  [SubscriptAlignLevel(s)] is [VarLevel(s)] when
    [s] is an affine function of loop indices, and [VarLevel(s) + 1]
    otherwise — the nesting level of the outermost loop throughout which
    the subscript's value is well defined.  [AlignLevel(r)] is the maximum
    of the [SubscriptAlignLevel]s over the subscripts appearing in
    {e partitioned} dimensions of reference [r]; an alignment with [r] is
    valid only inside the loop at that level.

    Under partial privatization (paper §3.2) only the grid dimensions in
    which the array is being privatized are considered, which lowers the
    [AlignLevel] (Fig. 6: [rsd(1,i,j,k)] has level 1 instead of 2). *)

open Hpf_lang
open Hpf_analysis

(** Innermost level (within the loops enclosing [sid]) at which variable
    [v] varies: its own loop level if a loop index, else the level of the
    deepest enclosing loop whose body assigns [v]; 0 if it never varies. *)
let var_level (prog : Ast.program) (nest : Nest.t) ~(sid : Ast.stmt_id)
    (v : string) : int =
  if Ast.param_value prog v <> None then 0
  else begin
    let idx_level = Nest.index_level nest sid v in
    if idx_level > 0 then idx_level
    else begin
      (* deepest enclosing loop containing an assignment to v *)
      let loops = Nest.enclosing_loops nest sid in
      let assigns_v (li : Nest.loop_info) =
        let found = ref false in
        Ast.iter_stmts
          (fun s ->
            match s.node with
            | Assign (LVar x, _) when String.equal x v -> found := true
            | Assign (LArr (x, _), _) when String.equal x v -> found := true
            | _ -> ())
          li.loop.body;
        !found
      in
      List.fold_left
        (fun acc li -> if assigns_v li then max acc li.Nest.level else acc)
        0 loops
    end
  end

(** [SubscriptAlignLevel] of one subscript expression at statement [sid]. *)
let subscript_align_level (prog : Ast.program) (nest : Nest.t)
    ~(sid : Ast.stmt_id) (sub : Ast.expr) : int =
  let indices = Nest.enclosing_indices nest sid in
  let vl =
    List.fold_left
      (fun acc v -> max acc (var_level prog nest ~sid v))
      0 (Ast.expr_vars sub)
  in
  match Affine.of_subscript prog ~indices sub with
  | Some _ -> vl
  | None -> vl + 1

(** Array dimensions of [base] that are partitioned, i.e. appear as the
    selecting dimension of a [Mapped] binding.  When [grid_dims] is given,
    only bindings on those grid dimensions count (partial
    privatization). *)
let partitioned_array_dims ?(grid_dims : int list option)
    (env : Layout.env) (base : string) : int list =
  let l = Layout.layout_of env base in
  let out = ref [] in
  Array.iteri
    (fun g b ->
      let considered =
        match grid_dims with None -> true | Some ds -> List.mem g ds
      in
      match b with
      | Layout.Mapped m when considered ->
          if not (List.mem m.array_dim !out) then out := m.array_dim :: !out
      | Layout.Mapped _ | Layout.Repl | Layout.Fixed _ -> ())
    l.bindings;
  List.sort compare !out

(** [AlignLevel] of reference [r]: max [SubscriptAlignLevel] over the
    subscripts in partitioned dimensions (0 when none are partitioned —
    alignment is then valid everywhere). *)
let align_level ?grid_dims (env : Layout.env) (nest : Nest.t)
    (r : Aref.t) : int =
  let dims = partitioned_array_dims ?grid_dims env r.Aref.base in
  List.fold_left
    (fun acc d ->
      match List.nth_opt r.Aref.subs d with
      | Some sub ->
          max acc (subscript_align_level env.Layout.prog nest ~sid:r.Aref.sid sub)
      | None -> acc)
    0 dims
