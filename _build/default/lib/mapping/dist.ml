(** Distribution formats and the index → processor-coordinate maps.

    Implements the HPF element-mapping functions for BLOCK, CYCLIC and
    CYCLIC(k) over a 0-based {e position} within a dimension (callers
    subtract the dimension's lower bound first). *)

type format = Block of int | Cyclic | Block_cyclic of int
(** [Block bsize]: contiguous blocks of [bsize] elements per processor.
    The block size is fixed at resolution time as
    [ceil(extent / nprocs)]. *)

let of_ast_format ~(extent : int) ~(nprocs : int) (f : Hpf_lang.Ast.dist_format) :
    format option =
  match f with
  | Hpf_lang.Ast.Block -> Some (Block ((extent + nprocs - 1) / nprocs))
  | Hpf_lang.Ast.Cyclic -> Some Cyclic
  | Hpf_lang.Ast.Block_cyclic k -> Some (Block_cyclic k)
  | Hpf_lang.Ast.Star -> None

(** Processor coordinate owning 0-based position [pos] among [nprocs]
    processors. *)
let owner_coord (f : format) ~(nprocs : int) (pos : int) : int =
  match f with
  | Block bsize -> min (pos / bsize) (nprocs - 1)
  | Cyclic -> ((pos mod nprocs) + nprocs) mod nprocs
  | Block_cyclic k -> ((pos / k) mod nprocs + nprocs) mod nprocs

(** Number of positions in [0 .. extent-1] owned by coordinate [c]. *)
let local_count (f : format) ~(nprocs : int) ~(extent : int) (c : int) : int =
  match f with
  | Block bsize ->
      let lo = c * bsize and hi = min extent ((c + 1) * bsize) in
      (* the last processor also holds any overflow *)
      let hi = if c = nprocs - 1 then extent else hi in
      max 0 (hi - lo)
  | Cyclic ->
      let full = extent / nprocs in
      full + if extent mod nprocs > c then 1 else 0
  | Block_cyclic k ->
      let nblocks = (extent + k - 1) / k in
      let full = nblocks / nprocs in
      let mine = full + if nblocks mod nprocs > c then 1 else 0 in
      (* last block may be partial; approximate by block count * k capped *)
      min (mine * k) extent

(** Are two 0-based positions owned by the same coordinate for every
    choice within the dimension?  Only exact position equality guarantees
    this symbolically; this helper answers for {e concrete} positions. *)
let same_owner (f : format) ~(nprocs : int) (a : int) (b : int) : bool =
  owner_coord f ~nprocs a = owner_coord f ~nprocs b

let pp ppf = function
  | Block b -> Fmt.pf ppf "block(%d)" b
  | Cyclic -> Fmt.string ppf "cyclic"
  | Block_cyclic k -> Fmt.pf ppf "cyclic(%d)" k
