(** Distribution formats and the index → processor-coordinate maps
    (HPF BLOCK / CYCLIC / CYCLIC(k)), over 0-based positions within a
    dimension. *)

(** [Block bsize] holds contiguous blocks of [bsize] positions per
    coordinate (fixed at resolution time as ceil(extent / nprocs)). *)
type format = Block of int | Cyclic | Block_cyclic of int

(** Resolve an AST format against a dimension extent and processor
    count; [None] for [*] (collapsed). *)
val of_ast_format :
  extent:int -> nprocs:int -> Hpf_lang.Ast.dist_format -> format option

(** Coordinate owning 0-based position [pos] (BLOCK clamps overflow to
    the last coordinate; CYCLIC is total on negatives too). *)
val owner_coord : format -> nprocs:int -> int -> int

(** Number of positions of [0..extent-1] owned by coordinate [c]
    (approximate for a trailing partial block under CYCLIC(k)). *)
val local_count : format -> nprocs:int -> extent:int -> int -> int

(** Do two concrete positions share an owner? *)
val same_owner : format -> nprocs:int -> int -> int -> bool

val pp : Format.formatter -> format -> unit
