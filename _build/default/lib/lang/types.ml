(** Element types and array shapes for the kernel language.

    The language is a small Fortran-like subset: scalars and arrays of
    integers, reals (modelled as OCaml floats, i.e. Fortran REAL*8) and
    booleans (Fortran LOGICAL). *)

type elt_type = TInt | TReal | TBool

let pp_elt_type ppf = function
  | TInt -> Fmt.string ppf "integer"
  | TReal -> Fmt.string ppf "real"
  | TBool -> Fmt.string ppf "logical"

let equal_elt_type (a : elt_type) (b : elt_type) = a = b

(** One array dimension, [lo..hi] inclusive, Fortran style. *)
type bounds = { lo : int; hi : int }

let bounds lo hi =
  if hi < lo then invalid_arg "Types.bounds: hi < lo";
  { lo; hi }

(** Number of elements in a dimension. *)
let extent { lo; hi } = hi - lo + 1

let pp_bounds ppf { lo; hi } =
  if lo = 1 then Fmt.pf ppf "%d" hi else Fmt.pf ppf "%d:%d" lo hi

(** Shape of a variable: [[]] denotes a scalar. *)
type shape = bounds list

let rank (s : shape) = List.length s

let size (s : shape) = List.fold_left (fun acc b -> acc * extent b) 1 s

let pp_shape ppf = function
  | [] -> ()
  | dims -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_bounds) dims
