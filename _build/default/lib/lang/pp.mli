(** Pretty-printer for the kernel language.

    Printing reaches a fixpoint through the parser
    ([print (parse (print p)) = print p], qcheck-tested), and is the
    report format of the [phpfc] CLI. *)

open Ast

val pp_expr : Format.formatter -> expr -> unit
val pp_lhs : Format.formatter -> lhs -> unit
val pp_stmt : indent:int -> Format.formatter -> stmt -> unit
val pp_dist_format : Format.formatter -> dist_format -> unit
val pp_align_sub : Format.formatter -> align_sub -> unit
val pp_directive : Format.formatter -> directive -> unit
val pp_decl : Format.formatter -> decl -> unit
val pp_program : Format.formatter -> program -> unit

val program_to_string : program -> string
val expr_to_string : expr -> string
val stmt_to_string : stmt -> string
