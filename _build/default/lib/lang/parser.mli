(** Recursive-descent parser for the kernel language (Fortran-flavoured,
    line-oriented; see the grammar comment in the implementation).

    The [!hpf$ independent [, new(...)]] directive may appear among
    executable statements and attaches to the next [do] loop; mapping
    directives ([processors] / [distribute] / [align]) belong to the
    header. *)

open Ast

exception Parse_error of Loc.t * string

(** Parse a complete program from a string.
    @param file name used in error locations.
    @raise Lexer.Lex_error on lexical errors.
    @raise Parse_error on syntax errors. *)
val parse_string : ?file:string -> string -> program

(** Parse a program from a file on disk. *)
val parse_file : string -> program

(** Parse a bare statement sequence (for tests). *)
val parse_stmts_string : string -> stmt list
