(** Loop-nest structure: enclosing-loop context for every statement.

    The paper's analyses constantly ask "what loops surround this
    statement, outermost first?" and "what is the nesting level of loop
    [l]?".  Nesting levels follow the paper's convention: the outermost
    loop of a nest is level 1, level 0 denotes "outside all loops". *)

open Ast

type loop_info = {
  loop_sid : stmt_id;
  loop : do_loop;
  level : int;  (** 1-based nesting depth *)
}

type t = {
  enclosing : (stmt_id, loop_info list) Hashtbl.t;
      (** per statement: enclosing loops, outermost first; for a [Do]
          statement this does {e not} include the loop itself *)
  loops : loop_info list;  (** all loops in preorder *)
  parent : (stmt_id, stmt_id) Hashtbl.t;
      (** innermost enclosing structured statement (loop or if) *)
}

let build (p : program) : t =
  let enclosing = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let loops = ref [] in
  let rec go ctx parent_sid stmts =
    List.iter
      (fun s ->
        Hashtbl.replace enclosing s.sid (List.rev ctx);
        (match parent_sid with
        | Some psid -> Hashtbl.replace parent s.sid psid
        | None -> ());
        match s.node with
        | Assign _ | Exit _ | Cycle _ -> ()
        | If (_, t, e) ->
            go ctx (Some s.sid) t;
            go ctx (Some s.sid) e
        | Do d ->
            let info =
              { loop_sid = s.sid; loop = d; level = List.length ctx + 1 }
            in
            loops := info :: !loops;
            go (info :: ctx) (Some s.sid) d.body)
      stmts
  in
  go [] None p.body;
  { enclosing; loops = List.rev !loops; parent }

(** Enclosing loops of a statement, outermost first. *)
let enclosing_loops (t : t) (sid : stmt_id) : loop_info list =
  match Hashtbl.find_opt t.enclosing sid with Some l -> l | None -> []

(** Nesting level of a statement = number of enclosing loops. *)
let level (t : t) (sid : stmt_id) : int =
  List.length (enclosing_loops t sid)

(** The loop at nesting level [lv] (1-based) around statement [sid]. *)
let loop_at_level (t : t) (sid : stmt_id) (lv : int) : loop_info option =
  List.nth_opt (enclosing_loops t sid) (lv - 1)

(** The innermost enclosing loop of [sid], if any. *)
let innermost_loop (t : t) (sid : stmt_id) : loop_info option =
  match List.rev (enclosing_loops t sid) with [] -> None | l :: _ -> Some l

let find_loop (t : t) (loop_sid : stmt_id) : loop_info option =
  List.find_opt (fun li -> li.loop_sid = loop_sid) t.loops

(** Does the loop with statement id [loop_sid] enclose statement [sid]?
    True also when [sid] {e is} the loop's own header statement?  No: a
    loop does not enclose itself. *)
let loop_encloses (t : t) ~(loop_sid : stmt_id) (sid : stmt_id) : bool =
  List.exists (fun li -> li.loop_sid = loop_sid) (enclosing_loops t sid)

(** Indices of the loops enclosing [sid], outermost first. *)
let enclosing_indices (t : t) (sid : stmt_id) : string list =
  List.map (fun li -> li.loop.index) (enclosing_loops t sid)

(** Innermost common enclosing loop of two statements, if any. *)
let common_loop (t : t) (a : stmt_id) (b : stmt_id) : loop_info option =
  let la = enclosing_loops t a and lb = enclosing_loops t b in
  let rec go last = function
    | x :: xs, y :: ys when x.loop_sid = y.loop_sid -> go (Some x) (xs, ys)
    | _ -> last
  in
  go None (la, lb)

(** Number of common enclosing loops of two statements. *)
let common_level (t : t) (a : stmt_id) (b : stmt_id) : int =
  match common_loop t a b with Some li -> li.level | None -> 0

(** Does loop variable [v] belong to a loop enclosing [sid]? *)
let is_enclosing_index (t : t) (sid : stmt_id) (v : string) : bool =
  List.mem v (enclosing_indices t sid)

(** Level of the loop with index variable [v] around [sid] (0 if none). *)
let index_level (t : t) (sid : stmt_id) (v : string) : int =
  let rec go n = function
    | [] -> 0
    | li :: _ when String.equal li.loop.index v -> n
    | _ :: tl -> go (n + 1) tl
  in
  go 1 (enclosing_loops t sid)
