(** Combinator DSL for constructing kernel-language programs in OCaml —
    used by the benchmark generators and tests.  Note that the arithmetic
    and comparison operators are shadowed to build {!Ast.expr} values;
    open the module locally. *)

open Ast

(** {2 Expressions} *)

val int : int -> expr

(** Real literal ([real] is the declaration combinator below). *)
val rlit : float -> expr

val bool : bool -> expr
val var : string -> expr
val arr : string -> expr list -> expr

(** [a $. subs] builds an array reference; sugar for {!arr}. *)
val ( $. ) : string -> expr list -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( ** ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val neg : expr -> expr
val not_ : expr -> expr
val abs_ : expr -> expr
val sqrt_ : expr -> expr
val exp_ : expr -> expr
val log_ : expr -> expr
val sign_ : expr -> expr
val min_ : expr -> expr -> expr
val max_ : expr -> expr -> expr
val mod_ : expr -> expr -> expr

(** {2 Statements} *)

val assign_var : string -> expr -> stmt
val assign_arr : string -> expr list -> expr -> stmt

(** [lhs <-- rhs] where [lhs] is a [Var] or [Arr] expression.
    @raise Invalid_argument otherwise. *)
val ( <-- ) : expr -> expr -> stmt

val if_ : expr -> stmt list -> stmt list -> stmt
val if_then : expr -> stmt list -> stmt
val exit_ : ?name:string -> unit -> stmt
val cycle : ?name:string -> unit -> stmt

val do_ :
  ?step:expr ->
  ?independent:bool ->
  ?new_vars:string list ->
  ?name:string ->
  string ->
  expr ->
  expr ->
  stmt list ->
  stmt

(** An [INDEPENDENT, NEW(vars)] loop. *)
val indep_do :
  ?step:expr ->
  ?new_vars:string list ->
  ?name:string ->
  string ->
  expr ->
  expr ->
  stmt list ->
  stmt

(** {2 Declarations} *)

(** [lo -- hi] builds dimension bounds. *)
val ( -- ) : int -> int -> Types.bounds

val scalar : Types.elt_type -> string -> decl
val real : string -> decl
val integer : string -> decl
val logical : string -> decl
val array : Types.elt_type -> string -> Types.shape -> decl
val real_arr : string -> Types.shape -> decl
val int_arr : string -> Types.shape -> decl

(** {2 Directives} *)

val block : dist_format
val cyclic : dist_format
val block_cyclic : int -> dist_format
val star : dist_format
val processors : string -> int list -> directive
val distribute : ?onto:string -> string -> dist_format list -> directive

(** [align_dim d]: the alignee's [d]-th (0-based) dummy, identity. *)
val align_dim : int -> align_sub

(** [align_dim_off d c]: alignee dummy [d] shifted by [c]. *)
val align_dim_off : int -> int -> align_sub

val align_const : int -> align_sub
val align_star : align_sub
val align : string -> string -> align_sub list -> directive

(** [align_identity b a r]: align rank-[r] array [b] identically with
    [a]. *)
val align_identity : string -> string -> int -> directive

(** {2 Programs} *)

val program :
  ?params:(string * int) list ->
  ?decls:decl list ->
  ?directives:directive list ->
  string ->
  stmt list ->
  program
