(** Loop-nest structure: the enclosing-loop context of every statement.
    Nesting levels follow the paper's convention — the outermost loop of
    a nest is level 1; level 0 means "outside all loops". *)

open Ast

type loop_info = {
  loop_sid : stmt_id;
  loop : do_loop;
  level : int;  (** 1-based nesting depth *)
}

type t = {
  enclosing : (stmt_id, loop_info list) Hashtbl.t;
      (** per statement: enclosing loops, outermost first (a [Do] does
          not enclose itself) *)
  loops : loop_info list;  (** all loops, preorder *)
  parent : (stmt_id, stmt_id) Hashtbl.t;
      (** innermost enclosing structured statement *)
}

val build : program -> t

(** Enclosing loops of a statement, outermost first. *)
val enclosing_loops : t -> stmt_id -> loop_info list

(** Number of enclosing loops. *)
val level : t -> stmt_id -> int

(** The loop at 1-based nesting level [lv] around a statement. *)
val loop_at_level : t -> stmt_id -> int -> loop_info option

val innermost_loop : t -> stmt_id -> loop_info option
val find_loop : t -> stmt_id -> loop_info option

(** Does the loop with the given header enclose the statement? *)
val loop_encloses : t -> loop_sid:stmt_id -> stmt_id -> bool

(** Index variables of the enclosing loops, outermost first. *)
val enclosing_indices : t -> stmt_id -> string list

(** Innermost loop common to two statements. *)
val common_loop : t -> stmt_id -> stmt_id -> loop_info option

(** Number of common enclosing loops. *)
val common_level : t -> stmt_id -> stmt_id -> int

(** Is [v] the index of a loop enclosing the statement? *)
val is_enclosing_index : t -> stmt_id -> string -> bool

(** Level of the enclosing loop with index [v] (0 when none). *)
val index_level : t -> stmt_id -> string -> int
