(** Source locations (file, 1-based line/column) for front-end
    diagnostics. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
