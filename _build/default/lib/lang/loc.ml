(** Source locations for the kernel-language front end.

    Locations are tracked by the lexer and attached to parse errors and
    semantic diagnostics.  AST nodes themselves do not carry locations to
    keep pattern matching in the analysis passes lightweight; diagnostics
    that need positions are emitted while the textual form is still at
    hand. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string l = Fmt.str "%a" pp l
