(** Semantic checks and normalization.

    {!check} validates declarations, reference ranks, directive
    consistency, loop-index discipline and [EXIT]/[CYCLE] targets, and
    returns the program with statement ids renumbered deterministically
    (preorder 1, 2, 3, ...), which every analysis relies on. *)

exception Sema_error of string

(** @raise Sema_error describing the first violation found. *)
val check : Ast.program -> Ast.program

(** Like {!check} with the program name prefixed to error messages. *)
val check_named : Ast.program -> Ast.program
