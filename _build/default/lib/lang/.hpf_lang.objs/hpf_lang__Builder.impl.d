lib/lang/builder.ml: Ast List Types
