lib/lang/nest.ml: Ast Hashtbl List String
