lib/lang/types.ml: Fmt List
