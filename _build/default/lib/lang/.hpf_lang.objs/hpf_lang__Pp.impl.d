lib/lang/pp.ml: Ast Float Fmt List String Types
