lib/lang/lexer.ml: List Loc Printf String
