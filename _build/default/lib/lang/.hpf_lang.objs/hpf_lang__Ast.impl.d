lib/lang/ast.ml: Float List Option String Types
