lib/lang/nest.mli: Ast Hashtbl
