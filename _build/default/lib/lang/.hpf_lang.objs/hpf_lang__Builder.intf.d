lib/lang/builder.mli: Ast Types
