lib/lang/lexer.mli: Loc
