lib/lang/sema.ml: Ast Fmt Hashtbl List Types
