(** Element types and array shapes: scalars and arrays of integers,
    reals (OCaml floats, i.e. REAL*8) and logicals, with explicit
    Fortran-style per-dimension bounds. *)

type elt_type = TInt | TReal | TBool

val pp_elt_type : Format.formatter -> elt_type -> unit
val equal_elt_type : elt_type -> elt_type -> bool

(** One dimension, [lo..hi] inclusive. *)
type bounds = { lo : int; hi : int }

(** @raise Invalid_argument when [hi < lo]. *)
val bounds : int -> int -> bounds

val extent : bounds -> int
val pp_bounds : Format.formatter -> bounds -> unit

(** [[]] denotes a scalar. *)
type shape = bounds list

val rank : shape -> int
val size : shape -> int
val pp_shape : Format.formatter -> shape -> unit
