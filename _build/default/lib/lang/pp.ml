(** Pretty-printer for the kernel language.

    Output round-trips through {!Parser.parse_string} (tested by a qcheck
    property), and is also the human-readable report format used by the
    [phpfc] CLI. *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> ".and."
  | Or -> ".or."

let unop_str = function
  | Neg -> "-"
  | Not -> ".not."
  | Abs -> "abs"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sign -> "sign"

let intrin2_str = function Min2 -> "min" | Max2 -> "max" | Mod2 -> "mod"

(* Precedence levels, higher binds tighter. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5
  | Pow -> 6

let rec pp_expr_prec prec ppf (e : expr) =
  match e with
  | Int n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Real f ->
      (* Ensure a decimal point so the lexer reads it back as a real, and
         parenthesize negatives so printing reaches a fixpoint (the parser
         reads [-1.0] as a negation). *)
      let s = Fmt.str "%.17g" (Float.abs f) in
      let s =
        if
          String.contains s '.'
          || String.contains s 'e'
          || String.contains s 'n' (* nan/inf *)
        then s
        else s ^ ".0"
      in
      if f < 0.0 then Fmt.pf ppf "(-%s)" s else Fmt.string ppf s
  | Bool true -> Fmt.string ppf ".true."
  | Bool false -> Fmt.string ppf ".false."
  | Var v -> Fmt.string ppf v
  | Arr (a, subs) ->
      Fmt.pf ppf "%s(%a)" a Fmt.(list ~sep:(any ", ") (pp_expr_prec 0)) subs
  | Bin (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_str op)
          (pp_expr_prec (p + 1))
          b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Un (Neg, a) -> Fmt.pf ppf "(-%a)" (pp_expr_prec 7) a
  | Un (Not, a) -> Fmt.pf ppf "(.not. %a)" (pp_expr_prec 7) a
  | Un (op, a) -> Fmt.pf ppf "%s(%a)" (unop_str op) (pp_expr_prec 0) a
  | Intrin (op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (intrin2_str op) (pp_expr_prec 0) a
        (pp_expr_prec 0) b

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lhs ppf = function
  | LVar v -> Fmt.string ppf v
  | LArr (a, subs) ->
      Fmt.pf ppf "%s(%a)" a Fmt.(list ~sep:(any ", ") pp_expr) subs

let rec pp_stmt ~indent ppf (s : stmt) =
  let pad = String.make indent ' ' in
  match s.node with
  | Assign (lhs, rhs) ->
      Fmt.pf ppf "%s%a = %a@." pad pp_lhs lhs pp_expr rhs
  | Exit None -> Fmt.pf ppf "%sexit@." pad
  | Exit (Some n) -> Fmt.pf ppf "%sexit %s@." pad n
  | Cycle None -> Fmt.pf ppf "%scycle@." pad
  | Cycle (Some n) -> Fmt.pf ppf "%scycle %s@." pad n
  | If (c, t, []) ->
      Fmt.pf ppf "%sif (%a) then@." pad pp_expr c;
      List.iter (pp_stmt ~indent:(indent + 2) ppf) t;
      Fmt.pf ppf "%send if@." pad
  | If (c, t, e) ->
      Fmt.pf ppf "%sif (%a) then@." pad pp_expr c;
      List.iter (pp_stmt ~indent:(indent + 2) ppf) t;
      Fmt.pf ppf "%selse@." pad;
      List.iter (pp_stmt ~indent:(indent + 2) ppf) e;
      Fmt.pf ppf "%send if@." pad
  | Do d ->
      if d.independent then begin
        if d.new_vars = [] then Fmt.pf ppf "%s!hpf$ independent@." pad
        else
          Fmt.pf ppf "%s!hpf$ independent, new(%a)@." pad
            Fmt.(list ~sep:(any ", ") string)
            d.new_vars
      end;
      let name_prefix =
        match d.loop_name with None -> "" | Some n -> n ^ ": "
      in
      (match d.step with
      | Int 1 ->
          Fmt.pf ppf "%s%sdo %s = %a, %a@." pad name_prefix d.index pp_expr
            d.lo pp_expr d.hi
      | _ ->
          Fmt.pf ppf "%s%sdo %s = %a, %a, %a@." pad name_prefix d.index
            pp_expr d.lo pp_expr d.hi pp_expr d.step);
      List.iter (pp_stmt ~indent:(indent + 2) ppf) d.body;
      Fmt.pf ppf "%send do@." pad

let pp_dist_format ppf = function
  | Block -> Fmt.string ppf "block"
  | Cyclic -> Fmt.string ppf "cyclic"
  | Block_cyclic k -> Fmt.pf ppf "cyclic(%d)" k
  | Star -> Fmt.string ppf "*"

let pp_align_sub ppf = function
  | A_dim { dum; stride; offset } ->
      let base =
        if stride = 1 then Fmt.str "$%d" dum
        else Fmt.str "%d * $%d" stride dum
      in
      if offset = 0 then Fmt.string ppf base
      else if offset > 0 then Fmt.pf ppf "%s + %d" base offset
      else Fmt.pf ppf "%s - %d" base (-offset)
  | A_const c -> Fmt.int ppf c
  | A_star -> Fmt.string ppf "*"

let pp_directive ppf = function
  | Processors { grid; extents } ->
      Fmt.pf ppf "!hpf$ processors %s(%a)@." grid
        Fmt.(list ~sep:(any ", ") pp_expr)
        extents
  | Distribute { array; fmts; onto } ->
      Fmt.pf ppf "!hpf$ distribute %s(%a)%a@." array
        Fmt.(list ~sep:(any ", ") pp_dist_format)
        fmts
        Fmt.(option (fun ppf g -> Fmt.pf ppf " onto %s" g))
        onto
  | Align { alignee; target; subs } ->
      Fmt.pf ppf "!hpf$ align %s with %s(%a)@." alignee target
        Fmt.(list ~sep:(any ", ") pp_align_sub)
        subs

let pp_decl ppf (d : decl) =
  Fmt.pf ppf "%a %s%a@." Types.pp_elt_type d.ty d.dname Types.pp_shape
    d.shape

let pp_program ppf (p : program) =
  Fmt.pf ppf "program %s@." p.pname;
  List.iter
    (fun (n, v) -> Fmt.pf ppf "parameter %s = %d@." n v)
    p.params;
  List.iter (pp_decl ppf) p.decls;
  List.iter (pp_directive ppf) p.directives;
  List.iter (pp_stmt ~indent:0 ppf) p.body;
  Fmt.pf ppf "end program@."

let program_to_string p = Fmt.str "%a" pp_program p
let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "%a" (pp_stmt ~indent:0) s
