(** Privatized execution of control-flow statements — paper §4: an [If]
    that cannot transfer control outside the body of its innermost loop
    contributes no computation-partitioning guard, executes on the union
    of the iteration's executors, and its predicate is communicated only
    to the owners of the control-dependent statements. *)

open Hpf_lang

(** Can the [If] statement [s] transfer control outside the body of the
    loop with header [l_sid]?  ([EXIT] of that loop or an outer one can;
    [CYCLE] of the innermost loop, or any transfer targeting a loop
    nested within [s], cannot.) *)
val escapes : Nest.t -> Ast.stmt -> l_sid:Ast.stmt_id -> bool

(** Decide privatized execution for every [If] statement. *)
val run : Decisions.t -> unit
