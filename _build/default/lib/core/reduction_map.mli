(** Mapping of scalars involved in reductions — paper §2.3: the
    accumulator (and any maxloc location companions) is replicated along
    exactly the grid dimensions the reduction spans and aligned with the
    partitioned reference of the contributed expression elsewhere. *)

open Hpf_analysis

(** Map the accumulators of all recognized reductions (requires the
    accumulator to be privatizable w.r.t. the loop surrounding the
    reduction loop; otherwise it stays replicated — Table 2's
    "Default"). *)
val run : Decisions.t -> unit

(** Number of processors the combine collective spans under the current
    decisions (1 = the partial result is already where it is needed, no
    collective). *)
val combine_group : Decisions.t -> Reduction.red -> int
