(** Human-readable report of a compilation: scalar/array/control-flow
    mapping decisions, recognized induction variables and reductions,
    and the communication schedule — the [phpfc compile] output. *)

open Hpf_analysis
open Hpf_comm

val pp_scalar_decisions : Format.formatter -> Decisions.t -> unit
val pp_array_decisions : Format.formatter -> Decisions.t -> unit
val pp_ctrl_decisions : Format.formatter -> Decisions.t -> unit
val pp_comms : Format.formatter -> Comm.t list -> unit
val pp_ivs : Format.formatter -> Induction.iv list -> unit

(** The full report. *)
val pp_compiled : Format.formatter -> Compiler.compiled -> unit

val to_string : Compiler.compiled -> string

(** Print the program source with, per statement, its
    computation-partitioning guard, attached communications, and per-loop
    array-privatization decisions — the [phpfc compile --annotate]
    view. *)
val pp_annotated : Format.formatter -> Compiler.compiled -> unit
