(** Consumer-reference determination (paper §2.1, Fig. 2): for every
    read reference of a statement, whose owner needs its value — the
    statement's computation partition for ordinary operands, the dummy
    replicated reference for loop bounds / lhs subscripts / subscripts of
    references that themselves need communication, and the union of the
    control-dependent statements' owners for privatized predicates. *)

open Hpf_lang
open Hpf_analysis
open Hpf_comm

(** Syntactic role of a read reference within its statement. *)
type role =
  | R_value  (** direct rhs value *)
  | R_sub_of of Aref.t  (** inside a subscript of this rhs reference *)
  | R_lhs_sub  (** inside a subscript of the lhs *)
  | R_bound  (** inside a DO bound *)
  | R_cond  (** inside an IF predicate *)

(** All read references of a statement with their roles (a scalar used in
    several roles appears once per role). *)
val classify_refs : Ast.program -> Ast.stmt -> (Aref.t * role) list

(** The reference whose owner partitions the statement's computation
    (lhs under owner-computes, redirected through privatized mappings
    and reduction targets); [None] for replicated/no-align/union cases. *)
val partition_ref : Decisions.t -> Ast.stmt -> Aref.t option

(** Skip communication analysis for this reference (loop indices are
    materialized everywhere by the SPMD loop structure). *)
val skip_ref : Decisions.t -> Aref.t -> bool

(** Consumer of a reference with the given role. *)
val consumer_for :
  Decisions.t -> Ast.stmt -> Aref.t -> role -> Comm_analysis.consumer

(** The communication-analysis oracle for a set of decisions. *)
val oracle : Decisions.t -> Comm_analysis.oracle
