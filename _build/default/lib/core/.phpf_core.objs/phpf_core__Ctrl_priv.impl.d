lib/core/ctrl_priv.ml: Ast Decisions Hashtbl Hpf_lang List Nest
