lib/core/consumer.ml: Aref Ast Comm_analysis Decisions Hpf_analysis Hpf_comm Hpf_lang Hpf_mapping List Nest Ownership Reduction
