lib/core/decisions.mli: Aref Ast Format Hashtbl Hpf_analysis Hpf_lang Hpf_mapping Layout Nest Ownership Privatizable Reduction Ssa
