lib/core/expansion.ml: Affine Align_level Aref Ast Compiler Decisions Fmt Hashtbl Hpf_analysis Hpf_lang Hpf_mapping List Nest String Types
