lib/core/report.ml: Aref Ast Comm Compiler Decisions Fmt Hashtbl Hpf_analysis Hpf_comm Hpf_lang Hpf_mapping Induction List Pp Reduction String
