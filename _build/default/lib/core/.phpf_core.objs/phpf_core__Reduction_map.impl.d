lib/core/reduction_map.ml: Affine Aref Array Ast Cfg Decisions Grid Hpf_analysis Hpf_lang Hpf_mapping Layout List Mapping_alg Nest Option Ownership Privatizable Reduction Ssa
