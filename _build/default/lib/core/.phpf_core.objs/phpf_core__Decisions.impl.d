lib/core/decisions.ml: Affine Aref Array Ast Cfg Fmt Hashtbl Hpf_analysis Hpf_lang Hpf_mapping Layout List Nest Ownership Privatizable Reduction Ssa
