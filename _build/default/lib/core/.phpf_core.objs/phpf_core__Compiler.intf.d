lib/core/compiler.mli: Ast Comm Cost_model Decisions Hpf_analysis Hpf_comm Hpf_lang Induction
