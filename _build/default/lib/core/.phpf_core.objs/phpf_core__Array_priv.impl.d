lib/core/array_priv.ml: Affine Align_level Aref Array Ast Auto_priv Consumer Decisions Fmt Hashtbl Hpf_analysis Hpf_lang Hpf_mapping Layout List Logs Nest Option Ownership Privatizable String
