lib/core/report.mli: Comm Compiler Decisions Format Hpf_analysis Hpf_comm Induction
