lib/core/expansion.mli: Ast Decisions Format Hpf_lang
