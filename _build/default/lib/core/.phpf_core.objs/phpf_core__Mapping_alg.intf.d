lib/core/mapping_alg.mli: Decisions Hpf_analysis Hpf_lang Ssa
