lib/core/consumer.mli: Aref Ast Comm_analysis Decisions Hpf_analysis Hpf_comm Hpf_lang
