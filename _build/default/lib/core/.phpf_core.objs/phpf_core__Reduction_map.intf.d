lib/core/reduction_map.mli: Decisions Hpf_analysis Reduction
