lib/core/array_priv.mli: Decisions
