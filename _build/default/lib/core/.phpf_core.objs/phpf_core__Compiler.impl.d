lib/core/compiler.ml: Array_priv Ast Comm Comm_analysis Consumer Cost_model Ctrl_priv Decisions Hpf_analysis Hpf_comm Hpf_lang Hpf_mapping Induction List Mapping_alg Reduction_map Sema
