lib/core/ctrl_priv.mli: Ast Decisions Hpf_lang Nest
