(** The phpf-style compilation pipeline — the main entry point of the
    library.

    {!compile} runs semantic checking, induction-variable rewriting, SSA
    construction, the privatization passes of the paper (control flow,
    reductions, arrays incl. partial privatization, the Fig. 3 scalar
    mapping algorithm) and communication analysis with message
    vectorization. *)

open Hpf_lang
open Hpf_analysis
open Hpf_comm

type compiled = {
  prog : Ast.program;  (** after semantic checks and IV rewriting *)
  decisions : Decisions.t;  (** every privatization/mapping decision *)
  comms : Comm.t list;  (** the communication schedule *)
  ivs : Induction.iv list;  (** recognized induction variables *)
}

(** Compile a program.

    @param grid_override replaces the extents of the declared [PROCESSORS]
    arrangement (to sweep machine sizes without editing the program).
    @param options disables individual phases, reproducing the paper's
    less-optimized compiler versions (see {!Decisions.options}).
    @raise Sema.Sema_error on semantic errors.
    @raise Hpf_mapping.Layout.Mapping_error on inconsistent directives. *)
val compile :
  ?grid_override:int list ->
  ?options:Decisions.options ->
  Ast.program ->
  compiled

(** Estimated communication time of the schedule under a machine model
    (static view; {!Hpf_spmd.Trace_sim} gives the measured view). *)
val estimated_comm_cost : ?model:Cost_model.t -> compiled -> float

(** Communications that could not be vectorized out of their innermost
    loop — the paper's expensive case. *)
val inner_loop_comms : compiled -> Comm.t list
