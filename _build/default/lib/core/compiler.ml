(** The phpf-style compilation pipeline.

    {!compile} runs, in order:

    + semantic checking and statement-id normalization ({!Hpf_lang.Sema});
    + induction-variable recognition and closed-form rewriting
      ({!Hpf_analysis.Induction}) — the program analysis phase that
      precedes mapping decisions in phpf;
    + construction of SSA, privatizability information, layouts and
      reduction records ({!Decisions.create});
    + control-flow privatization ({!Ctrl_priv});
    + reduction-accumulator mapping ({!Reduction_map});
    + array privatization, full and partial ({!Array_priv});
    + the scalar mapping pass ({!Mapping_alg}, paper Fig. 3);
    + communication analysis with message vectorization
      ({!Hpf_comm.Comm_analysis}) under the resulting decisions.

    [options] turns individual phases off to reproduce the paper's
    less-optimized compiler versions; [grid_override] replaces the
    declared processor arrangement to sweep machine sizes. *)

open Hpf_lang
open Hpf_analysis
open Hpf_comm

type compiled = {
  prog : Ast.program;  (** after semantic checks and IV rewriting *)
  decisions : Decisions.t;
  comms : Comm.t list;
  ivs : Induction.iv list;
}

let compile ?grid_override ?(options = Decisions.default_options)
    (input : Ast.program) : compiled =
  let checked = Sema.check input in
  let prog, ivs = Induction.run checked in
  let d = Decisions.create ?grid_override ~options prog in
  if options.Decisions.privatize_control then Ctrl_priv.run d;
  if options.Decisions.reduction_alignment then Reduction_map.run d;
  if options.Decisions.privatize_arrays then Array_priv.run d;
  if options.Decisions.privatize_scalars then Mapping_alg.run d;
  let comms =
    Comm_analysis.analyze prog d.Decisions.nest (Consumer.oracle d)
      ~reductions:d.Decisions.reductions
      ~red_group:(Reduction_map.combine_group d) ()
  in
  { prog; decisions = d; comms; ivs }

(** Estimated communication time under a machine model (the mapping
    algorithm's view of the program; the timing simulator in
    {!Hpf_spmd.Trace_sim} gives the measured view). *)
let estimated_comm_cost ?(model = Cost_model.sp2) (c : compiled) : float =
  let nprocs =
    Hpf_mapping.Grid.size c.decisions.Decisions.env.Hpf_mapping.Layout.grid
  in
  Comm.total_cost model ~nprocs c.comms

(** Communications that could not be vectorized out of their innermost
    loop. *)
let inner_loop_comms (c : compiled) : Comm.t list =
  List.filter
    (fun (cm : Comm.t) ->
      cm.Comm.stmt_level > 0
      && cm.Comm.placement_level >= cm.Comm.stmt_level)
    c.comms
