(** Scalar expansion — the classical alternative to privatization the
    paper contrasts in §6: each aligned loop temporary becomes an array
    indexed by the loop variable, aligned where the privatization
    algorithm would have placed the scalar.  Same communication
    structure, one array element per iteration instead of one scalar per
    processor. *)

open Hpf_lang

type expansion = {
  var : string;
  array_name : string;  (** [var ^ "_x"] *)
  loop_sid : Ast.stmt_id;
  index : string;
  lo : int;
  hi : int;
  align_directive : Ast.directive;
}

val pp_expansion : Format.formatter -> expansion -> unit

(** Expand the aligned privatizable scalars of a program (those with a
    single mentioning loop with constant unit-step bounds and a target
    traversing a partitioned dimension by the loop index).  Returns the
    transformed program — run it through {!Compiler.compile} — and the
    expansions performed. *)
val run :
  ?options:Decisions.options ->
  Ast.program ->
  Ast.program * expansion list
