(** The mapping algorithm for privatized scalars — paper §2.2, Fig. 3
    ([DetermineMapping]): per scalar definition, choose replication,
    consumer alignment, producer alignment (when consumer alignment would
    leave inner-loop communication), or privatization without alignment
    (deferred [NoAlignExam] list), with the mapping recorded identically
    on every reaching definition of every reached use. *)

open Hpf_analysis

(** Run the pass over every scalar definition in program order, then the
    deferred no-alignment examination.  Idempotent per definition:
    already-decided definitions are not re-decided. *)
val run : Decisions.t -> unit

(** Record [m] on the whole equivalence class of definitions connected
    to [def] through shared uses (the paper's consistency requirement).
    Aborts silently when the class's uses can also observe the entry
    (uninitialized) value, or a member lies outside the loop [within]
    which the alignment is valid.  Exposed for {!Reduction_map}. *)
val mark_alignment :
  ?within:Hpf_lang.Ast.stmt_id ->
  Decisions.t ->
  Ssa.def_id ->
  Decisions.scalar_mapping ->
  unit
