(** Consumer-reference determination (paper §2.1, Fig. 2).

    For every read reference of a statement, decide {e whose owner} needs
    its value:

    - an ordinary rhs value reference: the statement's computation
      partition (usually the lhs under owner-computes) — after the lhs's
      own privatized mapping has been applied;
    - a reference in a loop bound: the dummy replicated reference (all
      processors evaluate bounds);
    - a reference in the subscript of an rhs array reference: the lhs when
      that rhs reference needs no communication (only the executing
      processor must evaluate the subscript), the dummy replicated
      reference otherwise (paper's example: [p] vs [q] in Fig. 2);
    - a reference in an lhs subscript: the dummy replicated reference
      (the value determines {e where} the statement executes);
    - a predicate reference of a privatized [If]: the union of the owners
      executing the control-dependent statements (paper §4). *)

open Hpf_lang
open Hpf_analysis
open Hpf_mapping
open Hpf_comm

(** Syntactic role of a read reference within its statement. *)
type role =
  | R_value  (** direct rhs value *)
  | R_sub_of of Aref.t  (** inside a subscript of this rhs reference *)
  | R_lhs_sub  (** inside a subscript of the lhs *)
  | R_bound  (** inside a DO bound *)
  | R_cond  (** inside an IF predicate *)

(** All read references of a statement with their roles.  A scalar used
    both as a value and inside a subscript appears twice. *)
let classify_refs (prog : Ast.program) (s : Ast.stmt) : (Aref.t * role) list
    =
  let out = ref [] in
  let add base subs role =
    if Ast.param_value prog base = None then
      out := ({ Aref.sid = s.sid; base; subs }, role) :: !out
  in
  let rec expr (e : Ast.expr) (role : role) =
    match e with
    | Int _ | Real _ | Bool _ -> ()
    | Var v -> add v [] role
    | Arr (a, subs) ->
        let r = { Aref.sid = s.sid; base = a; subs } in
        add a subs role;
        List.iter (fun sub -> expr sub (R_sub_of r)) subs
    | Bin (_, a, b) | Intrin (_, a, b) ->
        expr a role;
        expr b role
    | Un (_, a) -> expr a role
  in
  (match s.node with
  | Assign (lhs, rhs) ->
      expr rhs R_value;
      (match lhs with
      | LArr (_, subs) -> List.iter (fun sub -> expr sub R_lhs_sub) subs
      | LVar _ -> ())
  | If (c, _, _) -> expr c R_cond
  | Do d ->
      expr d.lo R_bound;
      expr d.hi R_bound;
      expr d.step R_bound
  | Exit _ | Cycle _ -> ());
  List.rev !out

(* The reference whose owner partitions the computation of an
   assignment: the lhs, redirected through its privatized mapping. *)
let partition_ref (d : Decisions.t) (s : Ast.stmt) : Aref.t option =
  match Reduction.reduction_of_stmt d.Decisions.reductions s.sid with
  | Some red -> (
      (* reduction: partitioned by the special array reference chosen by
         Reduction_map (recorded as the accumulator's target).  For a
         conditional reduction the accumulator's definition sits on the
         assignment inside the If. *)
      let assign_sid =
        match s.node with
        | Assign _ -> Some s.sid
        | If (_, t, e) ->
            List.find_map
              (fun (st : Ast.stmt) ->
                match st.node with
                | Assign (LVar v, _) when v = red.Reduction.var ->
                    Some st.sid
                | _ -> None)
              (t @ e)
        | Do _ | Exit _ | Cycle _ -> None
      in
      match assign_sid with
      | None -> None
      | Some sid -> (
          match Decisions.def_of_stmt d ~sid ~var:red.Reduction.var with
          | Some def -> (
              match Decisions.scalar_mapping_of_def d def with
              | Decisions.Priv_reduction { target; _ }
              | Decisions.Priv_aligned { target; _ } ->
                  Some target
              | Decisions.Replicated | Decisions.Priv_no_align -> None)
          | None -> None))
  | None -> (
      match s.node with
      | Assign (LArr (a, subs), _) -> Some { Aref.sid = s.sid; base = a; subs }
      | Assign (LVar v, _) -> (
          match Decisions.def_of_stmt d ~sid:s.sid ~var:v with
          | Some def -> (
              match Decisions.scalar_mapping_of_def d def with
              | Decisions.Priv_aligned { target; _ }
              | Decisions.Priv_reduction { target; _ } ->
                  Some target
              | Decisions.Replicated | Decisions.Priv_no_align -> None)
          | None -> None)
      | If _ | Do _ | Exit _ | Cycle _ -> None)

(** Should this reference be skipped by communication analysis
    altogether?  Loop indices are materialized on every processor by the
    SPMD loop structure. *)
let skip_ref (d : Decisions.t) (r : Aref.t) : bool =
  Aref.is_scalar r
  && Nest.is_enclosing_index d.Decisions.nest r.Aref.sid r.Aref.base

(** Consumer of reference [r] having [role] within statement [s]. *)
let consumer_for (d : Decisions.t) (s : Ast.stmt) (_r : Aref.t)
    (role : role) : Comm_analysis.consumer =
  let dummy_replicated =
    { Comm_analysis.cref = None; spec = Decisions.all_procs d }
  in
  let partition_consumer () =
    match partition_ref d s with
    | Some pr ->
        {
          Comm_analysis.cref = Some pr;
          spec = Decisions.guard_spec d s;
        }
    | None -> { Comm_analysis.cref = None; spec = Decisions.guard_spec d s }
  in
  match role with
  | R_bound | R_lhs_sub -> dummy_replicated
  | R_cond ->
      if Decisions.ctrl_privatized d s.sid then begin
        (* needed by the union of processors executing the
           control-dependent statements *)
        let branches =
          match s.node with If (_, t, e) -> t @ e | _ -> []
        in
        let specs = List.map (Decisions.guard_spec d) branches in
        { Comm_analysis.cref = None; spec = Decisions.spec_union d specs }
      end
      else dummy_replicated
  | R_sub_of outer ->
      (* paper Fig. 2: if the subscripted rhs reference needs no
         communication, only the executing processor needs the subscript *)
      let outer_owner = Decisions.owner_spec d outer in
      let guard = Decisions.guard_spec d s in
      let rels = Ownership.relate outer_owner guard in
      if Ownership.no_comm rels then partition_consumer ()
      else dummy_replicated
  | R_value -> partition_consumer ()

(** The communication-analysis oracle for a set of decisions. *)
let oracle (d : Decisions.t) : Comm_analysis.oracle =
  {
    Comm_analysis.owner_of = (fun r -> Decisions.owner_spec d r);
    stmt_refs =
      (fun s ->
        classify_refs d.Decisions.prog s
        |> List.filter (fun (r, _) -> not (skip_ref d r))
        |> List.map (fun (r, role) -> (r, consumer_for d s r role)));
  }
