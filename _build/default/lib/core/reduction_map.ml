(** Mapping of scalars involved in reductions — paper §2.3.

    For each recognized reduction over loop [L] with accumulator [s]:

    - verify that [s]'s definitions are privatizable (without copy-out)
      with respect to the loop immediately surrounding [L];
    - the alignment target is the {e special array reference} whose
      ownership governs the partitioning of the partial reduction — the
      partitioned array reference in the contributed expression;
    - [s] is replicated along exactly the grid dimensions across which the
      reduction accumulates (those where the target's owner varies with
      [L]'s index) and aligned with the target in the remaining
      dimensions;
    - the mapping is propagated to every reaching definition of every
      reached use (so the initialisation [s = 0] before the loop and the
      consumers after it agree).

    When the reduction spans {e no} grid dimension (DGEFA: the pivot
    search runs down one cyclically-mapped column), the accumulator ends
    up simply aligned with the column's owner — the paper's optimization
    that confines partial pivoting to the relevant processor. *)

open Hpf_lang
open Hpf_analysis
open Hpf_mapping

(* Partitioned array reference inside the contributed expression. *)
let target_of_contrib (d : Decisions.t) (sid : Ast.stmt_id)
    (contrib : Ast.expr) : Aref.t option =
  let cands = ref [] in
  Ast.iter_expr
    (function
      | Ast.Arr (a, subs) ->
          cands := { Aref.sid; base = a; subs } :: !cands
      | _ -> ())
    contrib;
  List.rev !cands
  |> List.find_opt (fun r ->
         Ownership.is_partitioned_spec (Decisions.owner_spec d r))

(* Grid dimensions across which the reduction accumulates: where the
   target's owner position varies with the reduction loop's index. *)
let reduction_grid_dims (d : Decisions.t) (target : Aref.t)
    (loop_index : string) : int list =
  let spec = Decisions.owner_spec d target in
  let out = ref [] in
  Array.iteri
    (fun g o ->
      match o with
      | Ownership.O_affine { pos; _ } when Affine.coeff pos loop_index <> 0
        ->
          out := g :: !out
      | Ownership.O_affine _ | Ownership.O_all | Ownership.O_fixed _
      | Ownership.O_unknown ->
          (* a dimension along which the target is replicated needs no
             combine: every coordinate accumulates the full local result *)
          ())
    spec;
  List.rev !out

(* All real definitions of [var] lying inside the loop [li]. *)
let defs_in_loop (d : Decisions.t) (var : string) (li : Nest.loop_info) :
    Ssa.def_id list =
  Ssa.defs_of_var d.Decisions.ssa var
  |> List.filter (fun def ->
         match Ssa.def_node d.Decisions.ssa def with
         | Some node -> (
             match Cfg.sid_of_node d.Decisions.ssa.Ssa.cfg node with
             | Some sid ->
                 Nest.loop_encloses d.Decisions.nest
                   ~loop_sid:li.Nest.loop_sid sid
             | None -> false)
         | None -> false)

(** Number of processors the combine collective of [red] spans under the
    current decisions (1 = no collective needed). *)
let combine_group (d : Decisions.t) (red : Reduction.red) : int =
  let accum_def =
    Ssa.defs_of_var d.Decisions.ssa red.Reduction.var
    |> List.find_opt (fun def ->
           match Decisions.scalar_mapping_of_def d def with
           | Decisions.Priv_reduction _ -> true
           | _ -> false)
  in
  match accum_def with
  | Some def -> (
      match Decisions.scalar_mapping_of_def d def with
      | Decisions.Priv_reduction { repl_grid_dims; _ } ->
          List.fold_left
            (fun acc g -> acc * Grid.extent d.Decisions.env.Layout.grid g)
            1 repl_grid_dims
      | _ -> Grid.size d.Decisions.env.Layout.grid)
  | None ->
      (* replicated accumulator: the combine spans the whole machine *)
      Grid.size d.Decisions.env.Layout.grid

(** Map the accumulators of all recognized reductions. *)
let run (d : Decisions.t) : unit =
  List.iter
    (fun (red : Reduction.red) ->
      match Nest.find_loop d.Decisions.nest red.Reduction.loop_sid with
      | None -> ()
      | Some red_loop -> (
          (* the loop immediately surrounding the reduction loop *)
          let surrounding =
            Nest.innermost_loop d.Decisions.nest red.Reduction.loop_sid
          in
          let privatizable_ok =
            match surrounding with
            | None -> false (* top level: result is live after; replicate *)
            | Some outer ->
                List.for_all
                  (fun def ->
                    Privatizable.scalar_def_privatizable d.Decisions.priv
                      ~def ~loop_sid:outer.Nest.loop_sid)
                  (defs_in_loop d red.Reduction.var outer)
          in
          if privatizable_ok then
            match
              target_of_contrib d red.Reduction.stmt_sid
                red.Reduction.contrib
            with
            | None -> ()
            | Some target ->
                let repl_grid_dims =
                  reduction_grid_dims d target red_loop.Nest.loop.index
                in
                let level =
                  match surrounding with
                  | Some outer -> outer.Nest.level
                  | None -> 0
                in
                let m =
                  Decisions.Priv_reduction
                    { target; repl_grid_dims; level }
                in
                (* the accumulating def and, through it, every reaching
                   def of every reached use (incl. the initialisation);
                   validity is scoped to the surrounding loop *)
                let within =
                  Option.map (fun o -> o.Nest.loop_sid) surrounding
                in
                List.iter
                  (fun def -> Mapping_alg.mark_alignment ?within d def m)
                  (defs_in_loop d red.Reduction.var red_loop);
                (* companion location variables of maxloc/minloc *)
                List.iter
                  (fun (lv, _) ->
                    List.iter
                      (fun def ->
                        Mapping_alg.mark_alignment ?within d def m)
                      (defs_in_loop d lv red_loop))
                  red.Reduction.loc_vars))
    d.Decisions.reductions
