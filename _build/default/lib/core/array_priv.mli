(** Mapping of privatizable arrays — paper §3.1, and partial
    privatization §3.2: alignment-target selection as for scalars; full
    privatization gated by [AlignLevel <= loop level]; on failure under a
    multi-dimensional distribution, privatize along exactly the grid
    dimensions where the restricted AlignLevel holds and stay partitioned
    elsewhere (Fig. 6's work array). *)

(** Decide the mapping of every privatizable array of every loop
    (from [NEW] clauses, §3.1 inference, and — when enabled — the
    automatic analysis). *)
val run : Decisions.t -> unit
