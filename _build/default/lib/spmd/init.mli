(** Deterministic seeding of program memory for simulations and
    validation runs: every array element gets a value derived from a hash
    of its name and index vector, so stale or misplaced elements are
    distinguishable.  No global randomness — runs are reproducible. *)

open Hpf_lang

(** Fill every declared array of [prog] in [m] with deterministic values
    (reals in (0, 2); integers in [1, 8]; booleans from the low bit). *)
val seed : ?seed:int -> Ast.program -> Memory.t -> unit

(** [init prog] is [seed prog] packaged as an [init] argument for
    {!Seq_interp.run} / {!Spmd_interp.run} / {!Trace_sim.run}. *)
val init : ?seed:int -> Ast.program -> Memory.t -> unit
