(** Program memory: scalar bindings and dense Fortran-style arrays
    (row-major over the declared lo..hi ranges). *)

open Hpf_lang

type array_cell = { data : Value.t array; shape : Types.shape }

type t = {
  scalars : (string, Value.t) Hashtbl.t;
  arrays : (string, array_cell) Hashtbl.t;
}

exception Runtime_error of string

(** Raise {!Runtime_error} with a formatted message. *)
val rerr : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Fresh memory with every declared variable zero-initialized and
    parameters bound as integer scalars. *)
val create : Ast.program -> t

(** Deep copy (array contents included). *)
val copy : t -> t

(** @raise Runtime_error on unbound names or out-of-bounds subscripts. *)
val get_scalar : t -> string -> Value.t

val set_scalar : t -> string -> Value.t -> unit
val get_elem : t -> string -> int list -> Value.t
val set_elem : t -> string -> int list -> Value.t -> unit
val array_cell : t -> string -> array_cell

(** Row-major linearization of a (Fortran) index vector.
    @raise Runtime_error when out of the declared bounds. *)
val linear_index : Types.shape -> int list -> int

(** Iterate all (multi-index, value) pairs of an array. *)
val iter_elems : t -> string -> (int list -> Value.t -> unit) -> unit
