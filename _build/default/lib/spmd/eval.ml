(** Expression evaluation over a {!Memory}.

    Numeric semantics follow Fortran: integer arithmetic on two integers,
    promotion to real otherwise; [/] truncates on integers. *)

open Hpf_lang

let binop (op : Ast.binop) (a : Value.t) (b : Value.t) : Value.t =
  let arith fi ff : Value.t =
    match (a, b) with
    | Value.I x, Value.I y -> Value.I (fi x y)
    | _ -> Value.R (ff (Value.to_float a) (Value.to_float b))
  in
  let cmp f : Value.t =
    match (a, b) with
    | Value.I x, Value.I y -> Value.B (f (compare x y) 0)
    | _ -> Value.B (f (compare (Value.to_float a) (Value.to_float b)) 0)
  in
  match op with
  | Ast.Add -> arith ( + ) ( +. )
  | Ast.Sub -> arith ( - ) ( -. )
  | Ast.Mul -> arith ( * ) ( *. )
  | Ast.Div -> (
      match (a, b) with
      | Value.I x, Value.I y ->
          if y = 0 then Memory.rerr "integer division by zero"
          else Value.I (x / y)
      | _ -> Value.R (Value.to_float a /. Value.to_float b))
  | Ast.Pow -> (
      match (a, b) with
      | Value.I x, Value.I y when y >= 0 ->
          let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
          Value.I (pow 1 y)
      | _ -> Value.R (Float.pow (Value.to_float a) (Value.to_float b)))
  | Ast.Eq -> cmp ( = )
  | Ast.Ne -> cmp ( <> )
  | Ast.Lt -> cmp ( < )
  | Ast.Le -> cmp ( <= )
  | Ast.Gt -> cmp ( > )
  | Ast.Ge -> cmp ( >= )
  | Ast.And -> Value.B (Value.to_bool a && Value.to_bool b)
  | Ast.Or -> Value.B (Value.to_bool a || Value.to_bool b)

let unop (op : Ast.unop) (a : Value.t) : Value.t =
  match (op, a) with
  | Ast.Neg, Value.I n -> Value.I (-n)
  | Ast.Neg, _ -> Value.R (-.Value.to_float a)
  | Ast.Not, _ -> Value.B (not (Value.to_bool a))
  | Ast.Abs, Value.I n -> Value.I (abs n)
  | Ast.Abs, _ -> Value.R (Float.abs (Value.to_float a))
  | Ast.Sqrt, _ -> Value.R (sqrt (Value.to_float a))
  | Ast.Exp, _ -> Value.R (exp (Value.to_float a))
  | Ast.Log, _ -> Value.R (log (Value.to_float a))
  | Ast.Sign, Value.I n -> Value.I (compare n 0)
  | Ast.Sign, _ -> Value.R (if Value.to_float a >= 0.0 then 1.0 else -1.0)

let intrin (op : Ast.intrin2) (a : Value.t) (b : Value.t) : Value.t =
  match (op, a, b) with
  | Ast.Min2, Value.I x, Value.I y -> Value.I (min x y)
  | Ast.Max2, Value.I x, Value.I y -> Value.I (max x y)
  | Ast.Mod2, Value.I x, Value.I y ->
      if y = 0 then Memory.rerr "mod by zero" else Value.I (x mod y)
  | Ast.Min2, _, _ -> Value.R (Float.min (Value.to_float a) (Value.to_float b))
  | Ast.Max2, _, _ -> Value.R (Float.max (Value.to_float a) (Value.to_float b))
  | Ast.Mod2, _, _ ->
      Value.R (Float.rem (Value.to_float a) (Value.to_float b))

let rec expr (m : Memory.t) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int n -> Value.I n
  | Ast.Real f -> Value.R f
  | Ast.Bool b -> Value.B b
  | Ast.Var v -> Memory.get_scalar m v
  | Ast.Arr (a, subs) ->
      Memory.get_elem m a (List.map (fun s -> Value.to_int (expr m s)) subs)
  | Ast.Bin (op, a, b) -> binop op (expr m a) (expr m b)
  | Ast.Un (op, a) -> unop op (expr m a)
  | Ast.Intrin (op, a, b) -> intrin op (expr m a) (expr m b)

let int_expr (m : Memory.t) (e : Ast.expr) : int = Value.to_int (expr m e)

let bool_expr (m : Memory.t) (e : Ast.expr) : bool =
  Value.to_bool (expr m e)

(** Static count of arithmetic operations in an expression (for the
    timing model). *)
let rec flops (e : Ast.expr) : int =
  match e with
  | Ast.Int _ | Ast.Real _ | Ast.Bool _ | Ast.Var _ -> 0
  | Ast.Arr (_, subs) -> List.fold_left (fun a s -> a + flops s) 1 subs
  | Ast.Bin (_, a, b) | Ast.Intrin (_, a, b) -> 1 + flops a + flops b
  | Ast.Un (_, a) -> 1 + flops a

(** Flop count of a statement's own expressions. *)
let stmt_flops (s : Ast.stmt) : int =
  List.fold_left (fun acc e -> acc + flops e) 1 (Ast.own_exprs s)
