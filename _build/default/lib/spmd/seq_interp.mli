(** Reference sequential interpreter for the kernel language (Fortran
    semantics).  The gold standard the SPMD interpreter is validated
    against, and the execution driver of the timing simulator. *)

open Hpf_lang

exception Exit_loop of string option
exception Cycle_loop of string option

(** Default statement-instance budget before aborting (guards against
    runaway loops). *)
val default_fuel : int

type config = {
  fuel : int;
  on_stmt : (Ast.stmt -> Memory.t -> unit) option;
      (** called before each executed statement instance *)
}

val default_config : config

(** Execute a program.  [init] seeds the fresh memory (e.g. {!Init.init});
    returns the final memory.
    @raise Memory.Runtime_error on runtime faults or fuel exhaustion. *)
val run :
  ?config:config -> ?init:(Memory.t -> unit) -> Ast.program -> Memory.t
