(** Per-processor SPMD execution with explicit data movement — the
    correctness cross-check for the compilation.

    Every processor owns a full-size shadow memory, writes only under its
    computation-partitioning guard, and sees remote values only when the
    compiler's communication schedule moves them (reductions combine
    partial results across the grid dimensions they span).  {!validate}
    compares every processor's owned elements with the sequential
    reference; a missing or misplaced communication, or a wrong guard,
    fails the check. *)

open Phpf_core

type t = {
  compiled : Compiler.compiled;
  mutable reference : Memory.t;  (** the sequential reference memory *)
  procs : Memory.t array;  (** one shadow memory per processor *)
  mutable transfers : int;  (** elements copied between processors *)
}

(** Execute the compiled program in SPMD fashion.  [init] seeds the
    reference and every processor memory identically. *)
val run : ?init:(Memory.t -> unit) -> Compiler.compiled -> t

(** A divergence between a processor's owned copy and the reference. *)
type mismatch = {
  pid : int;
  array : string;
  index : int list;
  got : Value.t;
  expected : Value.t;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

(** Check every processor's owned elements of every non-privatized array
    against the reference.  Empty result = consistent execution. *)
val validate : ?max_mismatches:int -> t -> mismatch list
