lib/spmd/value.ml: Float Fmt Hpf_lang
