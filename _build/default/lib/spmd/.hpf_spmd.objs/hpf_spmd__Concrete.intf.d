lib/spmd/concrete.mli: Aref Ast Decisions Hpf_analysis Hpf_lang Hpf_mapping Layout Memory Ownership Phpf_core
