lib/spmd/init.ml: Ast Char Hpf_lang List Memory String Types Value
