lib/spmd/init.mli: Ast Hpf_lang Memory
