lib/spmd/spmd_interp.mli: Compiler Format Memory Phpf_core Value
