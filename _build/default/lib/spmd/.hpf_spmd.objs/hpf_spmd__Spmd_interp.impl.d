lib/spmd/spmd_interp.ml: Aref Array Ast Compiler Concrete Decisions Eval Fmt Hashtbl Hpf_analysis Hpf_comm Hpf_lang Hpf_mapping List Memory Nest Phpf_core Reduction Seq_interp Ssa String Value
