lib/spmd/seq_interp.ml: Ast Eval Hpf_lang List Memory Value
