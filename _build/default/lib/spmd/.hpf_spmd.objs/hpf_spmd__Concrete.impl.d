lib/spmd/concrete.ml: Aref Array Ast Decisions Dist Eval Fun Grid Hpf_analysis Hpf_lang Hpf_mapping Layout List Memory Nest Ownership Phpf_core
