lib/spmd/trace_sim.mli: Compiler Format Hpf_comm Memory Phpf_core
