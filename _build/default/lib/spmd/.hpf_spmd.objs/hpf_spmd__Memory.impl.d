lib/spmd/memory.ml: Array Ast Fmt Hashtbl Hpf_lang List Types Value
