lib/spmd/seq_interp.mli: Ast Hpf_lang Memory
