lib/spmd/value.mli: Format Hpf_lang
