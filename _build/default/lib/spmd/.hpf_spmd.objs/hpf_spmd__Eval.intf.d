lib/spmd/eval.mli: Ast Hpf_lang Memory Value
