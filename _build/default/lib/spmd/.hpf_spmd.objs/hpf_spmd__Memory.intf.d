lib/spmd/memory.mli: Ast Format Hashtbl Hpf_lang Types Value
