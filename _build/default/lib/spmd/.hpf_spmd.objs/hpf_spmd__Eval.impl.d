lib/spmd/eval.ml: Ast Float Hpf_lang List Memory Value
