lib/spmd/trace_sim.ml: Aref Array Ast Comm Compiler Concrete Cost_model Decisions Eval Float Fmt Hashtbl Hpf_analysis Hpf_comm Hpf_lang Hpf_mapping List Memory Nest Phpf_core Seq_interp Value
