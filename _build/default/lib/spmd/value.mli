(** Runtime values of the kernel language. *)

type t = I of int | R of float | B of bool

(** Zero value of a declared element type. *)
val zero : Hpf_lang.Types.elt_type -> t

(** Numeric coercions (Fortran promotion rules).
    @raise Invalid_argument on booleans where a number is required. *)
val to_float : t -> float

val to_int : t -> int
val to_bool : t -> bool

val equal : t -> t -> bool

(** Approximate equality used by the SPMD-vs-sequential cross-check
    (operation order is identical, so exact equality normally holds). *)
val close : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
