(** Runtime values of the kernel language. *)

type t = I of int | R of float | B of bool

let zero (ty : Hpf_lang.Types.elt_type) : t =
  match ty with
  | Hpf_lang.Types.TInt -> I 0
  | Hpf_lang.Types.TReal -> R 0.0
  | Hpf_lang.Types.TBool -> B false

let to_float = function
  | I n -> float_of_int n
  | R f -> f
  | B _ -> invalid_arg "Value.to_float: boolean"

let to_int = function
  | I n -> n
  | R f -> int_of_float f
  | B _ -> invalid_arg "Value.to_int: boolean"

let to_bool = function
  | B b -> b
  | I n -> n <> 0
  | R _ -> invalid_arg "Value.to_bool: real"

let equal (a : t) (b : t) =
  match (a, b) with
  | I x, I y -> x = y
  | R x, R y -> Float.equal x y
  | B x, B y -> x = y
  | (I _ | R _ | B _), _ -> false

(** Approximate equality for cross-checking SPMD against sequential
    execution (identical operation order is enforced, so exact equality
    normally holds; the tolerance guards against platform quirks). *)
let close ?(eps = 1e-12) (a : t) (b : t) =
  match (a, b) with
  | R x, R y ->
      Float.equal x y
      || Float.abs (x -. y) <= eps *. Float.max 1.0 (Float.abs x)
  | _ -> equal a b

let pp ppf = function
  | I n -> Fmt.int ppf n
  | R f -> Fmt.pf ppf "%.17g" f
  | B b -> Fmt.bool ppf b
