(** Expression evaluation over a {!Memory} (Fortran numeric semantics:
    integer arithmetic on two integers, promotion to real otherwise,
    truncating integer division). *)

open Hpf_lang

val binop : Ast.binop -> Value.t -> Value.t -> Value.t
val unop : Ast.unop -> Value.t -> Value.t
val intrin : Ast.intrin2 -> Value.t -> Value.t -> Value.t

(** @raise Memory.Runtime_error on unbound names, bad subscripts,
    division by zero. *)
val expr : Memory.t -> Ast.expr -> Value.t

val int_expr : Memory.t -> Ast.expr -> int
val bool_expr : Memory.t -> Ast.expr -> bool

(** Static count of arithmetic operations (for the timing model). *)
val flops : Ast.expr -> int

(** Flop count of a statement's own expressions (nested statements not
    included). *)
val stmt_flops : Ast.stmt -> int
