(** The compiler configurations of the paper's evaluation (Tables 1-3). *)

open Phpf_core

(** Everything on — the paper's "Selected Alignment" compiler. *)
val selected : Decisions.options

(** Table 1, column 1: no scalar privatization, every scalar replicated. *)
val replication : Decisions.options

(** Table 1, column 2: privatize, but always align with a producer
    reference. *)
val producer_alignment : Decisions.options

(** Table 2, column 1: reduction scalars keep the default replicated
    mapping. *)
val no_reduction_alignment : Decisions.options

(** Table 3: array privatization disabled entirely. *)
val no_array_priv : Decisions.options

(** Table 3: full-array privatization only (no partial privatization). *)
val no_partial_priv : Decisions.options

(** Add the global-message-combining extension (the optimization the
    paper notes phpf lacked, §5.3) to any configuration. *)
val with_message_combining : Decisions.options -> Decisions.options
