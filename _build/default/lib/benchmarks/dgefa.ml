(** DGEFA (LINPACK) — Gaussian elimination with partial pivoting, as used
    for Table 2 of the paper.

    The matrix is distributed column-wise in a CYCLIC manner.  In each
    elimination step [k], partial pivoting performs a maxloc reduction
    down column [k] — which lives on a single processor.  The paper's
    §2.3 optimization aligns the reduction scalars ([t], [l]) with
    [a(i,k)] in the dimensions not involved in the reduction: since the
    1-D column distribution leaves the reduction spanning {e no} grid
    dimension, the pivot search is confined to the owning processor and
    needs no broadcast of the column.  With the optimization disabled the
    scalars stay replicated, every processor executes the search, and the
    column is broadcast in every step — the roughly constant overhead of
    Table 2's "Default" column. *)

open Hpf_lang
open Builder

(** Build DGEFA for an [n]x[n] matrix on [p] processors. *)
let program ~(n : int) ~(p : int) : Ast.program =
  let i = var "i" and j = var "j" and k = var "k" and l = var "l" in
  let a subs : Ast.expr = "a" $. subs in
  program "dgefa"
    ~params:[ ("n", n) ]
    ~decls:
      [
        real_arr "a" [ 1 -- n; 1 -- n ];
        int_arr "ipvt" [ 1 -- n ];
        real "t";
        real "t2";
        real "t3";
        integer "l";
      ]
    ~directives:
      [
        processors "p" [ p ];
        distribute "a" [ star; cyclic ];
        (* ipvt(k) lives with column k *)
        align "ipvt" "a" [ align_star; align_dim 0 ];
      ]
    [
      do_ "k" (int 1) (var "n" - int 1)
        [
          (* partial pivoting: maxloc over column k *)
          var "t" <-- rlit 0.0;
          var "l" <-- k;
          do_ "i" k (var "n")
            [
              if_then
                (abs_ (a [ i; k ]) > var "t")
                [ var "t" <-- abs_ (a [ i; k ]); var "l" <-- i ];
            ];
          ("ipvt" $. [ k ]) <-- l;
          (* scale column k by the pivot *)
          var "t2" <-- rlit (-1.0) / a [ l; k ];
          do_ "i" (k + int 1) (var "n")
            [ ("a" $. [ i; k ]) <-- a [ i; k ] * var "t2" ];
          (* row interchange + rank-1 update of the trailing matrix *)
          do_ "j" (k + int 1) (var "n")
            [
              var "t3" <-- a [ l; j ];
              ("a" $. [ l; j ]) <-- a [ k; j ];
              ("a" $. [ k; j ]) <-- var "t3";
              do_ "i" (k + int 1) (var "n")
                [
                  ("a" $. [ i; j ])
                  <-- a [ i; j ] + (var "t3" * a [ i; k ]);
                ];
            ];
        ];
    ]
