(** The paper's code examples (Figs. 1, 2, 4, 5, 6, 7) as kernel-language
    programs.  Tests assert that the compiler reproduces the mapping
    decisions the paper derives for each of them. *)

open Hpf_lang
open Builder

(** Fig. 1: different alignments of privatized scalars ([m] induction,
    [x] consumer-aligned, [y] producer-aligned, [z] no alignment). *)
let fig1 ?(n = 100) ?(p = 4) () : Ast.program =
  let i = var "i" in
  program "fig1"
    ~params:[ ("n", n) ]
    ~decls:
      [
        real_arr "a" [ 1 -- n ];
        real_arr "b" [ 1 -- n ];
        real_arr "c" [ 1 -- n ];
        real_arr "d" [ 1 -- n ];
        real_arr "e" [ 1 -- n ];
        real_arr "f" [ 1 -- n ];
        real "x";
        real "y";
        real "z";
        integer "m";
      ]
    ~directives:
      [
        processors "p" [ p ];
        distribute "a" [ block ];
        align_identity "b" "a" 1;
        align_identity "c" "a" 1;
        align_identity "d" "a" 1;
        align "e" "a" [ align_star ];
        align "f" "a" [ align_star ];
      ]
    [
      assign_var "m" (int 2);
      do_ "i" (int 2) (var "n" - int 1)
        [
          var "m" <-- var "m" + int 1;
          var "x" <-- ("b" $. [ i ]) + ("c" $. [ i ]);
          var "y" <-- ("a" $. [ i ]) + ("b" $. [ i ]);
          var "z" <-- ("e" $. [ i ]) + ("f" $. [ i ]);
          ("a" $. [ i + int 1 ]) <-- var "y" / var "z";
          ("d" $. [ var "m" ]) <-- var "x" / var "z";
        ];
    ]

(** Fig. 2: availability requirements for subscripts ([p] consumed only
    by the executing processor, [q] needed by all). *)
let fig2 ?(n = 64) ?(np = 4) () : Ast.program =
  let i = var "i" in
  program "fig2"
    ~params:[ ("n", n) ]
    ~decls:
      [
        real_arr "h" [ 1 -- n; 1 -- n ];
        real_arr "g" [ 1 -- n; 1 -- n ];
        real_arr "a" [ 1 -- n ];
        int_arr "b" [ 1 -- n ];
        int_arr "c" [ 1 -- n ];
        integer "p";
        integer "q";
      ]
    ~directives:
      [
        processors "procs" [ np ];
        distribute "h" [ block; star ];
        align_identity "g" "h" 2;
        align "a" "h" [ align_dim 0; align_star ];
        (* subscript sources live with the rows *)
        align "b" "h" [ align_dim 0; align_star ];
        align "c" "h" [ align_dim 0; align_star ];
      ]
    [
      do_ "i" (int 1) (var "n")
        [
          var "p" <-- ("b" $. [ i ]);
          var "q" <-- ("c" $. [ i ]);
          ("a" $. [ i ]) <-- ("h" $. [ i; var "p" ]) + ("g" $. [ var "q"; i ]);
        ];
    ]

(** Fig. 4: AlignLevel of [a(i,j,k)] is 2 and of [b(s,j,k)] is 3. *)
let fig4 ?(n = 16) ?(p1 = 2) ?(p2 = 2) () : Ast.program =
  let i = var "i" and j = var "j" and k = var "k" in
  program "fig4"
    ~params:[ ("n", n) ]
    ~decls:
      [
        real_arr "a" [ 1 -- n; 1 -- n; 1 -- n ];
        real_arr "b" [ 1 -- n; 1 -- n; 1 -- n ];
        int_arr "w" [ 1 -- n ];
        integer "s";
      ]
    ~directives:
      [
        processors "p" [ p1; p2 ];
        distribute "a" [ block; block; star ];
        align_identity "b" "a" 3;
        align "w" "a" [ align_dim 0; align_star; align_star ];
      ]
    [
      do_ "i" (int 1) (var "n")
        [
          do_ "j" (int 1) (var "n")
            [
              var "s" <-- min_ (("w" $. [ i ]) + ("w" $. [ j ])) (var "n");
              do_ "k" (int 1) (var "n")
                [
                  ("a" $. [ i; j; k ]) <-- rlit 1.0;
                  ("b" $. [ var "s"; j; k ]) <-- rlit 2.0;
                ];
            ];
        ];
    ]

(** Fig. 5: scalar involved in a sum reduction across the second grid
    dimension. *)
let fig5 ?(n = 32) ?(p1 = 2) ?(p2 = 2) () : Ast.program =
  let i = var "i" and j = var "j" in
  program "fig5"
    ~params:[ ("n", n) ]
    ~decls:
      [
        real_arr "a" [ 1 -- n; 1 -- n ];
        real_arr "b" [ 1 -- n ];
        real "s";
      ]
    ~directives:
      [
        processors "p" [ p1; p2 ];
        distribute "a" [ block; block ];
        align "b" "a" [ align_dim 0; align_star ];
      ]
    [
      do_ "i" (int 1) (var "n")
        [
          var "s" <-- rlit 0.0;
          do_ "j" (int 1) (var "n")
            [ var "s" <-- var "s" + ("a" $. [ i; j ]) ];
          ("b" $. [ i ]) <-- var "s";
        ];
    ]

(** Fig. 6: the APPSP fragment motivating partial privatization — the
    work array [c] is privatizable w.r.t. the [k] loop but not [j]. *)
let fig6 ?(n = 12) ?(p1 = 2) ?(p2 = 2) () : Ast.program =
  Appsp.program_2d ~n ~niter:1 ~p1 ~p2

(** Fig. 7: privatized execution of control flow statements. *)
let fig7 ?(n = 64) ?(p = 4) () : Ast.program =
  let i = var "i" in
  program "fig7"
    ~params:[ ("n", n) ]
    ~decls:
      [
        real_arr "a" [ 1 -- n ];
        real_arr "b" [ 1 -- n ];
        real_arr "c" [ 1 -- n ];
      ]
    ~directives:
      [
        processors "p" [ p ];
        distribute "a" [ block ];
        align_identity "b" "a" 1;
        align_identity "c" "a" 1;
      ]
    [
      do_ "i" (int 1) (var "n")
        [
          if_
            (("b" $. [ i ]) <> rlit 0.0)
            [
              ("a" $. [ i ]) <-- ("a" $. [ i ]) / ("b" $. [ i ]);
              (* the paper's "go to 100" lands on the final continue of
                 the loop body: a CYCLE *)
              if_then (("b" $. [ i ]) < rlit 0.0) [ cycle () ];
            ]
            [
              ("a" $. [ i ]) <-- ("c" $. [ i ]);
              ("c" $. [ i ]) <-- ("c" $. [ i ]) * ("c" $. [ i ]);
            ];
        ];
    ]
