(** TOMCATV (SPEC92FP) — the mesh-generation kernel used for Table 1.

    The main loop nest computes a dozen scalar temporaries per mesh point
    from 9-point stencils; with the paper's (star, BLOCK) column
    distribution, consumer alignment of the temporaries leaves only
    vectorizable ±1-column shifts, producer alignment strands them one
    column from their consumers (one message per inner iteration), and
    replication forfeits all parallelism. *)

open Hpf_lang

(** TOMCATV for an [n]×[n] mesh, [niter] solver iterations, on a 1-D
    grid of [p] processors over columns.  The paper ran n = 258,
    niter = 100. *)
val program : n:int -> niter:int -> p:int -> Ast.program
