(** Drivers that regenerate the paper's Tables 1-3 on the machine
    simulator.

    Absolute seconds depend on the SP2 cost constants and problem sizes;
    the reproduced claims are relative: column ordering, approximate
    ratios, scaling trends.  Sizes: [`Full] = the paper's (slow),
    [`Medium] = the EXPERIMENTS.md record, [`Scaled] = fast default. *)

open Hpf_spmd

type entry = { variant : string; time : float; result : Trace_sim.result }

type row = { procs : int; entries : entry list }

type table = { title : string; columns : string list; rows : row list }

(** Table 1: TOMCATV with replication / producer alignment / selected
    alignment. *)
val table1 :
  ?size:[ `Full | `Medium | `Scaled ] -> ?procs:int list -> unit -> table

(** Table 2: DGEFA with the §2.3 reduction mapping off ("Default") and
    on ("Alignment"). *)
val table2 :
  ?size:[ `Full | `Medium | `Scaled ] -> ?procs:int list -> unit -> table

(** Table 3: APPSP — 1-D distribution with/without array privatization,
    2-D distribution with/without partial privatization. *)
val table3 :
  ?size:[ `Full | `Medium | `Scaled ] -> ?procs:int list -> unit -> table

val pp_table : Format.formatter -> table -> unit

(** [speedup t ~column ~from_procs ~to_procs] = time ratio of the column
    between two machine sizes. *)
val speedup :
  table -> column:string -> from_procs:int -> to_procs:int -> float option

(** [ratio t ~procs ~worse ~better] = how much slower [worse] is than
    [better] at the given machine size. *)
val ratio : table -> procs:int -> worse:string -> better:string -> float option
