(** APPSP (NAS) — the sweep structure behind Table 3 and Fig. 6.

    Each solver iteration recomputes a per-plane work array [c]
    (privatizable w.r.t. the [k] loop but not [j] — paper Fig. 6), runs a
    z-recurrence, and updates the solution.  Two HPF variants mirror the
    paper's: a 1-D distribution with transpose-based z-sweep, and a 2-D
    distribution that needs {e partial privatization} of [c]. *)

open Hpf_lang

(** 2-D (star, BLOCK, BLOCK) distribution on a [p1]×[p2] grid; the
    z-recurrence pipelines along the distributed [k]. *)
val program_2d : n:int -> niter:int -> p1:int -> p2:int -> Ast.program

(** 1-D (star, star, BLOCK) distribution over [k]; the z-sweep runs on a
    transposed copy so the recurrence is local (the paper's
    "redistribution of data in the sweepz subroutine").  [c] carries no
    directives: without array privatization it is replicated — the
    configuration the paper aborted after a day. *)
val program_1d : n:int -> niter:int -> p:int -> Ast.program
