(** The paper's code examples (Figs. 1, 2, 4, 5, 6, 7) as kernel-language
    programs; tests assert the compiler reproduces the mapping decisions
    the paper derives for each. *)

open Hpf_lang

(** Fig. 1: different alignments of privatized scalars ([m] induction
    variable, [x] consumer-aligned with [d(m)], [y] producer-aligned with
    [a(i)], [z] privatized without alignment). *)
val fig1 : ?n:int -> ?p:int -> unit -> Ast.program

(** Fig. 2: availability requirements for subscripts — [p] is needed only
    by the executing processor, [q] by all. *)
val fig2 : ?n:int -> ?np:int -> unit -> Ast.program

(** Fig. 4: AlignLevel of [a(i,j,k)] is 2 and of [b(s,j,k)] is 3. *)
val fig4 : ?n:int -> ?p1:int -> ?p2:int -> unit -> Ast.program

(** Fig. 5: a sum reduction across the second grid dimension; [s] is
    replicated there and aligned with row [i] of [a] elsewhere. *)
val fig5 : ?n:int -> ?p1:int -> ?p2:int -> unit -> Ast.program

(** Fig. 6: the APPSP fragment motivating partial privatization. *)
val fig6 : ?n:int -> ?p1:int -> ?p2:int -> unit -> Ast.program

(** Fig. 7: privatized execution of control-flow statements (the
    intra-loop goto becomes a CYCLE). *)
val fig7 : ?n:int -> ?p:int -> unit -> Ast.program
