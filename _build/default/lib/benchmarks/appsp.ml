(** APPSP (NAS benchmarks) — the pseudo-application solving five coupled
    PDEs, reduced to the sweep structure that drives Table 3 and Fig. 6
    of the paper.

    Each solver iteration:

    + an xy-sweep over planes [k]: a work array [c] is recomputed per
      plane and consumed with a [j-1] offset — [c] is privatizable with
      respect to the [k] loop ([INDEPENDENT, NEW(c)], paper Fig. 6) but
      {e not} with respect to the [j] loop;
    + a z-sweep with a first-order recurrence along [k];
    + a pointwise update of [u].

    Two program versions mirror the paper's two HPF variants:

    - {!program_1d}: arrays distributed (star, star, BLOCK) over [k]; the
      z-sweep runs on a transposed copy [ut] distributed
      (star, BLOCK, star) so the recurrence is local (the paper's
      "redistribution of data in the sweepz subroutine").  [c] carries no
      distribution directive; without array privatization it is
      replicated and the [k] loop's work and operands land on every
      processor — the configuration the paper had to abort after a day.
    - {!program_2d}: arrays distributed (star, BLOCK, BLOCK) on a 2-D
      grid; [c]'s own directive partitions its second dimension on the
      first grid dimension only.  Exploiting both parallel dimensions
      requires {e partial privatization} of [c] along the grid dimension
      that carries [k]. *)

open Hpf_lang
open Builder

let i = var "i"
let j = var "j"
let k = var "k"

let u subs : Ast.expr = "u" $. subs
let rsd subs : Ast.expr = "rsd" $. subs
let c subs : Ast.expr = "c" $. subs

(* the xy sweep: recompute c per plane k, then consume it with a j-1
   offset (paper Fig. 6 shape) *)
let xy_sweep ~n1 =
  indep_do ~new_vars:[ "c" ] "k" (int 2) n1
    [
      do_ "j" (int 2) n1
        [
          do_ "i" (int 2) n1
            [
              ("c" $. [ i; j ])
              <-- (rlit 0.2 * u [ i; j; k ])
                  + (rlit 0.1 * u [ i; j; k - int 1 ])
                  + (rlit 0.1 * u [ i; j - int 1; k ]);
            ];
        ];
      do_ "j" (int 3) n1
        [
          do_ "i" (int 2) n1
            [
              ("rsd" $. [ i; j; k ])
              <-- c [ i; j - int 1 ]
                  + (rlit 0.5 * c [ i; j ])
                  + (rlit 0.3 * u [ i; j; k ]);
            ];
        ];
    ]

(* pointwise update of u from rsd *)
let update ~n1 =
  do_ "k" (int 2) n1
    [
      do_ "j" (int 2) n1
        [
          do_ "i" (int 2) n1
            [
              ("u" $. [ i; j; k ])
              <-- u [ i; j; k ] + (rlit 0.1 * rsd [ i; j; k ]);
            ];
        ];
    ]

(** 2-D distributed version: z-sweep recurrence runs in place (per-plane
    pipeline communication along the [k]-distributed dimension). *)
let program_2d ~(n : int) ~(niter : int) ~(p1 : int) ~(p2 : int) :
    Ast.program =
  let n1 = var "n" - int 1 in
  program "appsp2d"
    ~params:[ ("n", n); ("niter", niter) ]
    ~decls:
      [
        real_arr "u" [ 1 -- n; 1 -- n; 1 -- n ];
        real_arr "rsd" [ 1 -- n; 1 -- n; 1 -- n ];
        real_arr "c" [ 1 -- n; 1 -- n ];
      ]
    ~directives:
      [
        processors "p" [ p1; p2 ];
        distribute "u" [ star; block; block ];
        distribute "rsd" [ star; block; block ];
        distribute "c" [ star; block ];
      ]
    [
      do_ "it" (int 1) (var "niter")
        [
          xy_sweep ~n1;
          (* z sweep: first-order recurrence along the distributed k *)
          do_ "k" (int 3) n1
            [
              do_ "j" (int 2) n1
                [
                  do_ "i" (int 2) n1
                    [
                      ("rsd" $. [ i; j; k ])
                      <-- rsd [ i; j; k ]
                          - (rlit 0.2 * rsd [ i; j; k - int 1 ]);
                    ];
                ];
            ];
          update ~n1;
        ];
    ]

(** 1-D distributed version with transpose-based z-sweep. *)
let program_1d ~(n : int) ~(niter : int) ~(p : int) : Ast.program =
  let n1 = var "n" - int 1 in
  let ut subs : Ast.expr = "ut" $. subs in
  program "appsp1d"
    ~params:[ ("n", n); ("niter", niter) ]
    ~decls:
      [
        real_arr "u" [ 1 -- n; 1 -- n; 1 -- n ];
        real_arr "rsd" [ 1 -- n; 1 -- n; 1 -- n ];
        real_arr "ut" [ 1 -- n; 1 -- n; 1 -- n ];
        real_arr "c" [ 1 -- n; 1 -- n ];
      ]
    ~directives:
      [
        processors "p" [ p ];
        distribute "u" [ star; star; block ];
        distribute "rsd" [ star; star; block ];
        (* the transposed copy is distributed over j so the k recurrence
           is local *)
        distribute "ut" [ star; block; star ];
      ]
    [
      do_ "it" (int 1) (var "niter")
        [
          xy_sweep ~n1;
          (* transpose rsd into ut *)
          do_ "k" (int 2) n1
            [
              do_ "j" (int 2) n1
                [
                  do_ "i" (int 2) n1
                    [ ("ut" $. [ i; j; k ]) <-- rsd [ i; j; k ] ];
                ];
            ];
          (* z sweep: recurrence along k, local under ut's distribution *)
          do_ "k" (int 3) n1
            [
              do_ "j" (int 2) n1
                [
                  do_ "i" (int 2) n1
                    [
                      ("ut" $. [ i; j; k ])
                      <-- ut [ i; j; k ]
                          - (rlit 0.2 * ut [ i; j; k - int 1 ]);
                    ];
                ];
            ];
          (* transpose back *)
          do_ "k" (int 2) n1
            [
              do_ "j" (int 2) n1
                [
                  do_ "i" (int 2) n1
                    [ ("rsd" $. [ i; j; k ]) <-- ut [ i; j; k ] ];
                ];
            ];
          update ~n1;
        ];
    ]
