(** TOMCATV (SPEC92FP) — the mesh-generation kernel with Thomson's
    solver, as used for Table 1 of the paper.

    The main computational loop nest computes a dozen scalar temporaries
    per point from 9-point stencils over the coordinate arrays [x], [y]
    and stores coefficients and residuals.  With the paper's
    (star, BLOCK) distribution every column is local, so

    - aligning each temporary with its {e consumer} (the column-local
      lhs) leaves only vectorizable ±1-column shifts for [x(i,j±1)];
    - aligning with a {e producer} such as [x(i,j+1)] strands temporaries
      one column away from their consumers and forces one message per
      inner iteration;
    - replicating the temporaries makes every processor execute the whole
      nest and broadcasts the stencil operands.

    The program is size-parametrized; the paper ran n = 258. *)

open Hpf_lang
open Builder

(** Build the TOMCATV kernel for an [n]x[n] mesh, [niter] solver
    iterations, on [p] processors (1-D grid over columns). *)
let program ~(n : int) ~(niter : int) ~(p : int) : Ast.program =
  let nn = n in
  let arr2 name = real_arr name [ 1 -- nn; 1 -- nn ] in
  let i = var "i" and j = var "j" in
  let x = "x" and y = "y" in
  let sub a di dj =
    (a $. [ i + int di; j + int dj ] : Ast.expr)
  in
  program "tomcatv"
    ~params:[ ("n", n); ("niter", niter) ]
    ~decls:
      [
        arr2 "x";
        arr2 "y";
        arr2 "aa";
        arr2 "dd";
        arr2 "rx";
        arr2 "ry";
        real "xx";
        real "yx";
        real "xy";
        real "yy";
        real "a";
        real "b";
        real "c";
        real "pxx";
        real "qxx";
        real "pyy";
        real "qyy";
      ]
    ~directives:
      ([ processors "p" [ p ]; distribute "x" [ star; block ] ]
      @ List.map
          (fun a -> align_identity a "x" 2)
          [ "y"; "aa"; "dd"; "rx"; "ry" ])
    [
      do_ "it" (int 1) (var "niter")
        [
          do_ "j" (int 2) (var "n" - int 1)
            [
              do_ "i" (int 2) (var "n" - int 1)
                [
                  var "xx" <-- sub x 1 0 - sub x (-1) 0;
                  var "yx" <-- sub y 1 0 - sub y (-1) 0;
                  var "xy" <-- sub x 0 1 - sub x 0 (-1);
                  var "yy" <-- sub y 0 1 - sub y 0 (-1);
                  var "a"
                  <-- rlit 0.25
                      * ((var "xx" * var "xx") + (var "yx" * var "yx"));
                  var "b"
                  <-- rlit 0.25
                      * ((var "xy" * var "xy") + (var "yy" * var "yy"));
                  var "c"
                  <-- rlit 0.125
                      * ((var "xx" * var "xy") + (var "yx" * var "yy"));
                  ("aa" $. [ i; j ]) <-- neg (var "b");
                  ("dd" $. [ i; j ])
                  <-- var "b" + var "b" + (var "a" * rlit 0.9);
                  var "pxx"
                  <-- sub x 1 0 - (rlit 2.0 * sub x 0 0) + sub x (-1) 0;
                  var "qxx"
                  <-- sub y 1 0 - (rlit 2.0 * sub y 0 0) + sub y (-1) 0;
                  var "pyy"
                  <-- sub x 0 1 - (rlit 2.0 * sub x 0 0) + sub x 0 (-1);
                  var "qyy"
                  <-- sub y 0 1 - (rlit 2.0 * sub y 0 0) + sub y 0 (-1);
                  ("rx" $. [ i; j ])
                  <-- (var "a" * var "pxx")
                      + (var "b" * var "pyy")
                      - (var "c" * var "xx");
                  ("ry" $. [ i; j ])
                  <-- (var "a" * var "qxx")
                      + (var "b" * var "qyy")
                      - (var "c" * var "yy");
                ];
            ];
          (* SOR-style correction sweep: feeds x, y for the next solver
             iteration so the stencil communication cannot be hoisted out
             of the iteration loop *)
          do_ "j" (int 2) (var "n" - int 1)
            [
              do_ "i" (int 2) (var "n" - int 1)
                [
                  ("x" $. [ i; j ])
                  <-- ("x" $. [ i; j ]) + (rlit 0.05 * ("rx" $. [ i; j ]));
                  ("y" $. [ i; j ])
                  <-- ("y" $. [ i; j ]) + (rlit 0.05 * ("ry" $. [ i; j ]));
                ];
            ];
        ];
    ]
