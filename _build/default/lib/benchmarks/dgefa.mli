(** DGEFA (LINPACK) — Gaussian elimination with partial pivoting, used
    for Table 2.

    Columns are CYCLIC-distributed; each elimination step runs a maxloc
    reduction down one column.  With the paper's §2.3 mapping the pivot
    scalars live with that column's owner (no broadcast, combine group of
    one processor); replicated, every processor searches and the column
    is broadcast each step. *)

open Hpf_lang

(** DGEFA for an [n]×[n] matrix on [p] processors.  The paper ran
    n = 512. *)
val program : n:int -> p:int -> Ast.program
