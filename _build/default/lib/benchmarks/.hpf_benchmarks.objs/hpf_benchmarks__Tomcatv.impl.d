lib/benchmarks/tomcatv.ml: Ast Builder Hpf_lang List
