lib/benchmarks/fig_examples.ml: Appsp Ast Builder Hpf_lang
