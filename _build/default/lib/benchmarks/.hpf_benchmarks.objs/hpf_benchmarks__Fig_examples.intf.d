lib/benchmarks/fig_examples.mli: Ast Hpf_lang
