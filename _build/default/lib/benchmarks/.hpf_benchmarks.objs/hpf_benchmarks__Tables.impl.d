lib/benchmarks/tables.ml: Appsp Ast Compiler Decisions Dgefa Fmt Hpf_comm Hpf_lang Hpf_mapping Hpf_spmd Init List Option Phpf_core String Tomcatv Trace_sim Variants
