lib/benchmarks/appsp.mli: Ast Hpf_lang
