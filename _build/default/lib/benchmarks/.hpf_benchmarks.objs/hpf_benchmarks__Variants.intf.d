lib/benchmarks/variants.mli: Decisions Phpf_core
