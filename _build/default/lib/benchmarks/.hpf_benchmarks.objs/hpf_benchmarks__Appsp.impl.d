lib/benchmarks/appsp.ml: Ast Builder Hpf_lang
