lib/benchmarks/dgefa.ml: Ast Builder Hpf_lang
