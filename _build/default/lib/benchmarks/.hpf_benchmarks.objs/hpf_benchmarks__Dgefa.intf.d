lib/benchmarks/dgefa.mli: Ast Hpf_lang
