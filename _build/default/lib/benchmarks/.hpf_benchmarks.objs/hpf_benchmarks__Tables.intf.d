lib/benchmarks/tables.mli: Format Hpf_spmd Trace_sim
