lib/benchmarks/tomcatv.mli: Ast Hpf_lang
