lib/benchmarks/variants.ml: Decisions Phpf_core
