(** Loop-level placement of communication (message vectorization).

    A communication hoists outward until a write inside the crossed loop
    feeds the read (true dependence), or a non-affine subscript's value
    stops being well defined ([VarLevel]).  This computation is what
    makes the paper's cost model "realistic ... taking into account the
    placement of communication". *)

open Hpf_lang
open Hpf_analysis

(** Innermost level the subscripts pin the communication to: 0 for
    affine subscripts (they aggregate), [VarLevel] for non-affine ones. *)
val subscript_constraint :
  Ast.program -> Nest.t -> sid:Ast.stmt_id -> Ast.expr list -> int

(** Loop level the communication for [data] (toward a consumer reference
    with [consumer_subs]) sits just inside; 0 = hoisted out of every
    loop. *)
val placement_level :
  Ast.program -> Nest.t -> data:Aref.t -> consumer_subs:Ast.expr list -> int

(** Message-aggregation index variables: the data's subscript indices
    minus [exclude]. *)
val aggregation_vars : data:Aref.t -> exclude:string list -> string list

(** Elements per execution at [placement]: the product of the trips of
    the crossed loops whose index is in [vars]. *)
val elems_per_instance :
  Ast.program ->
  Nest.t ->
  data:Aref.t ->
  vars:string list ->
  placement:int ->
  int

(** Number of executions of the communication (iterations of the loops
    outside the placement). *)
val instances :
  Ast.program -> Nest.t -> data:Aref.t -> placement:int -> int
