(** Loop-level placement of communication (message vectorization).

    A communication for a read reference is hoisted outward as long as

    - no write inside the loop being crossed produces values the read may
      consume (a true dependence pins the communication inside), and
    - every subscript of the moved data and of its destination is
      well defined outside the loop: affine subscripts vectorize (the
      messages aggregate over the loop index), while a subscript
      containing a non-affine value pins the communication inside the
      loop where that value varies (its [VarLevel], cf. paper Fig. 2/4).

    The paper's mapping algorithm consults exactly this computation for
    its "alignment with the consumer leads to inner-loop communication"
    veto, which is what makes the cost model "realistic ... taking into
    account the placement of communication" (paper §1). *)

open Hpf_lang
open Hpf_analysis
open Hpf_mapping

(** Innermost level below which the subscripts force the communication to
    stay: 0 for affine subscripts, [VarLevel] for non-affine ones. *)
let subscript_constraint (prog : Ast.program) (nest : Nest.t)
    ~(sid : Ast.stmt_id) (subs : Ast.expr list) : int =
  let indices = Nest.enclosing_indices nest sid in
  List.fold_left
    (fun acc sub ->
      match Affine.of_subscript prog ~indices sub with
      | Some _ -> acc
      | None ->
          let vl =
            List.fold_left
              (fun a v -> max a (Align_level.var_level prog nest ~sid v))
              0 (Ast.expr_vars sub)
          in
          max acc vl)
    0 subs

(** Placement level for communicating [data] to a consumer whose
    reference has subscripts [consumer_subs] (empty for scalars or the
    dummy replicated consumer).  Returns the loop level the communication
    sits just inside (0 = fully hoisted). *)
let placement_level (prog : Ast.program) (nest : Nest.t) ~(data : Aref.t)
    ~(consumer_subs : Ast.expr list) : int =
  let sid = data.Aref.sid in
  let loops = Nest.enclosing_loops nest sid in
  let stmt_level = List.length loops in
  let constr =
    max
      (subscript_constraint prog nest ~sid data.Aref.subs)
      (subscript_constraint prog nest ~sid consumer_subs)
  in
  let dref =
    { Depend.sid; base = data.Aref.base; subs = data.Aref.subs }
  in
  (* walk outward from the innermost loop *)
  let rec hoist lv =
    if lv = 0 then 0
    else if constr >= lv then lv
    else begin
      match List.nth_opt loops (lv - 1) with
      | None -> lv
      | Some li ->
          if Depend.write_feeds_read_in_loop prog nest li dref then lv
          else hoist (lv - 1)
    end
  in
  hoist stmt_level

(** Loop-index variables over which a vectorized message for [data]
    aggregates elements: the indices appearing in the data's subscripts,
    minus [exclude] (for shifts, the index that drives the shifted
    dimension — along it only the boundary overlap moves). *)
let aggregation_vars ~(data : Aref.t) ~(exclude : string list) :
    string list =
  List.concat_map Ast.expr_vars data.Aref.subs
  |> List.sort_uniq String.compare
  |> List.filter (fun v -> not (List.mem v exclude))

(** Elements moved per execution of the communication at [placement]:
    the product of the trips of the crossed loops whose index is in
    [vars] (crossing a loop that does not enlarge the message is free). *)
let elems_per_instance (prog : Ast.program) (nest : Nest.t)
    ~(data : Aref.t) ~(vars : string list) ~(placement : int) : int =
  let loops = Nest.enclosing_loops nest data.Aref.sid in
  List.fold_left
    (fun acc (li : Nest.loop_info) ->
      if li.level > placement && List.mem li.loop.index vars then
        acc * Trips.trip prog li.loop
      else acc)
    1 loops

(** Number of times the communication executes. *)
let instances (prog : Ast.program) (nest : Nest.t) ~(data : Aref.t)
    ~(placement : int) : int =
  Trips.iterations_at_level prog nest ~sid:data.Aref.sid placement
