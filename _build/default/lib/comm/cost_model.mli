(** Communication and computation cost model, calibrated to the paper's
    platform (IBM SP2 thin nodes, user-space MPL, 1995-97 era).

    Point-to-point messages follow [alpha + beta * bytes]; collectives pay
    a [log2 p] factor.  The constants only set the scale — the
    reproduction targets relative behaviour, which depends on the
    latency-to-flop ratio (about three orders of magnitude on the SP2). *)

type t = {
  alpha : float;  (** message startup latency, seconds *)
  beta : float;  (** per-byte transfer time, seconds *)
  flop : float;  (** time per floating-point operation, seconds *)
  elem_bytes : int;  (** bytes per array element (REAL*8) *)
  copy : float;  (** per-element pack/unpack cost, seconds *)
}

(** IBM SP2 thin node: ~40 us latency, ~35 MB/s bandwidth, ~25 Mflop/s
    sustained. *)
val sp2 : t

(** An idealized free network — ablation benches use it to show the
    mapping choice only matters when communication costs are real. *)
val zero_latency : t

(** [log2i p] = ceil(log2 p), 0 for p <= 1. *)
val log2i : int -> int

(** One point-to-point message of [elems] elements. *)
val ptp : t -> elems:int -> float

(** One-to-all broadcast among [p] processors (binomial tree). *)
val bcast : t -> p:int -> elems:int -> float

(** Combining reduction among [p] processors. *)
val reduce : t -> p:int -> elems:int -> float

(** Collective nearest-neighbour shift (all pairs exchange in parallel). *)
val shift : t -> elems:int -> float

(** All-to-all transpose of [total_elems] spread over [p] processors. *)
val transpose : t -> p:int -> total_elems:int -> float

(** Arithmetic time for [flops] floating-point operations. *)
val compute : t -> flops:int -> float
