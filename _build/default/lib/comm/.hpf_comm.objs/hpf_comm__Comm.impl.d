lib/comm/comm.ml: Aref Cost_model Fmt Hpf_analysis List
