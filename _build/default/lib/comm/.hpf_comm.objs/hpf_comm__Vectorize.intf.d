lib/comm/vectorize.mli: Aref Ast Hpf_analysis Hpf_lang Nest
