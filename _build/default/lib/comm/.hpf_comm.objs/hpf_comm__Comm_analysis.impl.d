lib/comm/comm_analysis.ml: Affine Aref Array Ast Comm Float Hpf_analysis Hpf_lang Hpf_mapping List Nest Ownership Reduction Trips Vectorize
