lib/comm/cost_model.ml:
