lib/comm/comm_analysis.mli: Aref Ast Comm Hpf_analysis Hpf_lang Hpf_mapping Nest Ownership Reduction
