lib/comm/vectorize.ml: Affine Align_level Aref Ast Depend Hpf_analysis Hpf_lang Hpf_mapping List Nest String Trips
