lib/comm/cost_model.mli:
