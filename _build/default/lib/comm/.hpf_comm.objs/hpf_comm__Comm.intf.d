lib/comm/comm.mli: Aref Cost_model Format Hpf_analysis
