lib/analysis/privatizable.mli: Ast Hpf_lang Nest Ssa
