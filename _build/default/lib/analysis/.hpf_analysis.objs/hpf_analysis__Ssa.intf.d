lib/analysis/ssa.mli: Cfg Dom Format Hashtbl
