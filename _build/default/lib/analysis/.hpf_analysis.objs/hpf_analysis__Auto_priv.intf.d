lib/analysis/auto_priv.mli: Ast Hpf_lang Nest
