lib/analysis/induction.mli: Ast Constprop Hpf_lang Ssa
