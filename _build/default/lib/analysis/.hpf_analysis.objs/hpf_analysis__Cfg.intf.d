lib/analysis/cfg.mli: Ast Format Hashtbl Hpf_lang
