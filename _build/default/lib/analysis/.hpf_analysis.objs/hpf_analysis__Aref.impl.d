lib/analysis/aref.ml: Ast Fmt Hpf_lang List Pp String
