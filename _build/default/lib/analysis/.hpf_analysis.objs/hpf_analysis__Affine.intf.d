lib/analysis/affine.mli: Ast Format Hpf_lang
