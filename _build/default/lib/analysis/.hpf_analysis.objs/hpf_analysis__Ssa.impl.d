lib/analysis/ssa.ml: Array Cfg Dom Fmt Hashtbl Int List Queue Set String
