lib/analysis/depend.ml: Affine Ast Hpf_lang List Nest String
