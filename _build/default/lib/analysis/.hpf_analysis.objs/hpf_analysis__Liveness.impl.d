lib/analysis/liveness.ml: Array Ast Cfg Hpf_lang List Set String
