lib/analysis/liveness.mli: Ast Cfg Hpf_lang Set
