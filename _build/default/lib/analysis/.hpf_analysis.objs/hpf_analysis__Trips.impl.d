lib/analysis/trips.ml: Ast Hpf_lang List Nest
