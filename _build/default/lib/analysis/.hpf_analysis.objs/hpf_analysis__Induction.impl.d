lib/analysis/induction.ml: Affine Array Ast Cfg Constprop Dom Hashtbl Hpf_lang List Option Ssa String
