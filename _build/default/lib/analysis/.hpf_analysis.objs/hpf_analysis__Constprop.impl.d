lib/analysis/constprop.ml: Array Ast Cfg Float Fmt Hpf_lang List Ssa
