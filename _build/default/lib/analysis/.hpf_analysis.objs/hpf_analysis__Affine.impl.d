lib/analysis/affine.ml: Ast Fmt Hpf_lang List Option
