lib/analysis/auto_priv.ml: Affine Ast Cfg Hpf_lang List Liveness Nest Option String
