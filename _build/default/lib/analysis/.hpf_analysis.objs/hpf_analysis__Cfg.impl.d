lib/analysis/cfg.ml: Array Ast Fmt Hashtbl Hpf_lang List String
