lib/analysis/trips.mli: Ast Hpf_lang Nest
