lib/analysis/constprop.mli: Ast Format Hpf_lang Ssa
