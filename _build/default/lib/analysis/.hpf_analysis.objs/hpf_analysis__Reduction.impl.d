lib/analysis/reduction.ml: Ast Fmt Hashtbl Hpf_lang List Nest
