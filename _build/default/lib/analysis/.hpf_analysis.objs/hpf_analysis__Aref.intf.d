lib/analysis/aref.mli: Ast Format Hpf_lang
