lib/analysis/depend.mli: Affine Ast Hpf_lang Nest
