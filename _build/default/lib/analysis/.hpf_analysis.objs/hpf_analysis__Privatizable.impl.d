lib/analysis/privatizable.ml: Affine Ast Cfg Hpf_lang List Nest Ssa
