lib/analysis/reduction.mli: Ast Format Hpf_lang
