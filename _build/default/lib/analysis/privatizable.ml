(** Privatizability tests (paper §2.2 [IsPrivatizable], §3.1).

    A scalar definition [d] inside loop [L] is privatizable with respect
    to [L] when its value neither flows to a use outside [L] nor to a use
    in a {e later iteration} of [L] (no flow across [L]'s back edge).  The
    [NEW] clause of an [INDEPENDENT] directive asserts privatizability of
    the listed variables outright.

    For arrays, phpf relies on directives: the [NEW] clause, or the weaker
    [INDEPENDENT]-only form (no loop-carried {e value-based} dependences),
    under which any lhs array reference whose subscripts do not involve the
    parallel-loop index contributes memory-based loop-carried dependences
    that only privatization can remove (paper §3.1). *)

open Hpf_lang

type t = {
  prog : Ast.program;
  nest : Nest.t;
  ssa : Ssa.t;
}

let make (prog : Ast.program) (ssa : Ssa.t) : t =
  { prog; nest = Nest.build prog; ssa }

(* CFG nodes of the loop-head statements for loop [loop_sid]. *)
let head_nodes (t : t) (loop_sid : Ast.stmt_id) : int list =
  List.filter
    (fun i ->
      match (Cfg.node t.ssa.Ssa.cfg i).kind with
      | Cfg.Loop_head s -> s.sid = loop_sid
      | _ -> false)
    (Cfg.nodes_of_sid t.ssa.Ssa.cfg loop_sid)

(* Is CFG node [n] textually inside loop [loop_sid]?  The loop's own
   init/head/step/join nodes do not count as inside. *)
let node_inside_loop (t : t) ~(loop_sid : Ast.stmt_id) (n : int) : bool =
  match Cfg.sid_of_node t.ssa.Ssa.cfg n with
  | None -> false
  | Some sid ->
      if sid = loop_sid then false
      else Nest.loop_encloses t.nest ~loop_sid sid

(** Is definition [d] (which must define a scalar inside loop [loop_sid])
    privatizable with respect to that loop?

    Checks via the SSA reached-uses walk:
    - every reached real use lies inside the loop, and
    - no reached use observes the value across the loop's back edge. *)
let scalar_def_privatizable (t : t) ~(def : Ssa.def_id)
    ~(loop_sid : Ast.stmt_id) : bool =
  let var = Ssa.def_var t.ssa def in
  (* NEW clause assertion *)
  let new_asserted =
    match Nest.find_loop t.nest loop_sid with
    | Some li -> List.mem var li.loop.new_vars
    | None -> false
  in
  if new_asserted then true
  else begin
    let heads = head_nodes t loop_sid in
    let uses = Ssa.reached_uses t.ssa def in
    List.for_all
      (fun (u : Ssa.use_info) ->
        node_inside_loop t ~loop_sid u.use_node
        && not (List.exists (fun h -> List.mem h u.back_edges) heads))
      uses
  end

(** The outermost loop (smallest level) with respect to which [def] is
    privatizable, or [None] when it is not privatizable even w.r.t. its
    innermost enclosing loop.  Returns the loop info. *)
let outermost_privatizable_loop (t : t) ~(def : Ssa.def_id) :
    Nest.loop_info option =
  match Ssa.def_node t.ssa def with
  | None -> None
  | Some node -> (
      match Cfg.sid_of_node t.ssa.Ssa.cfg node with
      | None -> None
      | Some sid ->
          let loops = Nest.enclosing_loops t.nest sid in
          (* outermost first *)
          List.find_opt
            (fun (li : Nest.loop_info) ->
              scalar_def_privatizable t ~def ~loop_sid:li.loop_sid)
            loops)

(** The innermost loop with respect to which [def] is privatizable —
    the loop the mapping algorithm privatizes against, since it maximizes
    the nesting level [l] and therefore admits the most alignment targets
    ([AlignLevel(r) <= l]). *)
let innermost_privatizable_loop (t : t) ~(def : Ssa.def_id) :
    Nest.loop_info option =
  match Ssa.def_node t.ssa def with
  | None -> None
  | Some node -> (
      match Cfg.sid_of_node t.ssa.Ssa.cfg node with
      | None -> None
      | Some sid ->
          List.find_opt
            (fun (li : Nest.loop_info) ->
              scalar_def_privatizable t ~def ~loop_sid:li.loop_sid)
            (List.rev (Nest.enclosing_loops t.nest sid)))

(** Is the scalar definition [d] privatizable w.r.t. its innermost
    enclosing loop? *)
let privatizable_innermost (t : t) ~(def : Ssa.def_id) : bool =
  match Ssa.def_node t.ssa def with
  | None -> false
  | Some node -> (
      match Cfg.sid_of_node t.ssa.Ssa.cfg node with
      | None -> false
      | Some sid -> (
          match Nest.innermost_loop t.nest sid with
          | None -> false
          | Some li -> scalar_def_privatizable t ~def ~loop_sid:li.loop_sid))

(** Is [def] the unique reaching definition of all its reached uses?
    (The [IsUniqueDef] test of paper Fig. 3: required for privatization
    without alignment, so that every reached use sees the privately
    computed value.) *)
let is_unique_def (t : t) ~(def : Ssa.def_id) : bool =
  let uses = Ssa.reached_uses t.ssa def in
  List.for_all
    (fun (u : Ssa.use_info) ->
      match
        Ssa.reaching_defs t.ssa ~node:u.use_node ~var:u.use_var
      with
      | [ d ] -> d = def
      | _ -> false)
    uses

(* ------------------------------------------------------------------ *)
(* Arrays                                                              *)
(* ------------------------------------------------------------------ *)

type array_priv_source =
  | From_new  (** listed in the loop's [NEW] clause *)
  | Inferred  (** inferred from an [INDEPENDENT]-only loop (paper §3.1) *)
  | Auto
      (** proved by the automatic def-before-use analysis ({!Auto_priv},
          the paper's future-work integration) *)

(** Arrays privatizable with respect to loop [li], with the evidence.

    Inference rule (paper §3.1): in a loop asserted [INDEPENDENT] (no true
    loop-carried value dependences), an lhs array reference in which every
    subscript is invariant w.r.t. the parallel loop index (affine in inner
    loop indices only) creates memory-based loop-carried dependences that
    can be eliminated only by privatizing the array. *)
let privatizable_arrays (t : t) (li : Nest.loop_info) :
    (string * array_priv_source) list =
  let explicit =
    List.filter (fun v -> Ast.is_array t.prog v) li.loop.new_vars
    |> List.map (fun v -> (v, From_new))
  in
  let inferred = ref [] in
  if li.loop.independent then begin
    let add v =
      if
        (not (List.mem_assoc v explicit))
        && not (List.mem_assoc v !inferred)
      then inferred := (v, Inferred) :: !inferred
    in
    let loop_index = li.loop.index in
    Ast.iter_stmts
      (fun s ->
        match s.node with
        | Assign (LArr (a, subs), _) ->
            let indices = Nest.enclosing_indices t.nest s.sid in
            let invariant_in_parallel_index =
              List.for_all
                (fun sub ->
                  match Affine.of_subscript t.prog ~indices sub with
                  | Some af -> Affine.coeff af loop_index = 0
                  | None -> false)
                subs
            in
            if invariant_in_parallel_index then add a
        | _ -> ())
      li.loop.body
  end;
  explicit @ List.rev !inferred
