(** Privatizability tests (paper §2.2 [IsPrivatizable], §3.1): a scalar
    definition is privatizable w.r.t. loop [L] when its value neither
    flows outside [L] nor across [L]'s back edge; the [NEW] clause
    asserts it outright.  Arrays come from directives or (extension) the
    automatic analysis. *)

open Hpf_lang

type t = { prog : Ast.program; nest : Nest.t; ssa : Ssa.t }

val make : Ast.program -> Ssa.t -> t

(** Is the definition privatizable with respect to the given loop? *)
val scalar_def_privatizable :
  t -> def:Ssa.def_id -> loop_sid:Ast.stmt_id -> bool

(** Outermost loop the definition is privatizable against, if any. *)
val outermost_privatizable_loop :
  t -> def:Ssa.def_id -> Nest.loop_info option

(** Innermost such loop — the one the mapping algorithm uses, since a
    larger level admits more alignment targets. *)
val innermost_privatizable_loop :
  t -> def:Ssa.def_id -> Nest.loop_info option

val privatizable_innermost : t -> def:Ssa.def_id -> bool

(** Is the definition the unique reaching definition of all its reached
    uses (paper Fig. 3's [IsUniqueDef])? *)
val is_unique_def : t -> def:Ssa.def_id -> bool

type array_priv_source =
  | From_new  (** listed in the loop's [NEW] clause *)
  | Inferred  (** inferred from an [INDEPENDENT]-only loop (paper §3.1) *)
  | Auto  (** proved by {!Auto_priv} (future-work extension) *)

(** Arrays privatizable w.r.t. the loop, with the evidence. *)
val privatizable_arrays :
  t -> Nest.loop_info -> (string * array_priv_source) list
