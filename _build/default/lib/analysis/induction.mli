(** Induction-variable recognition and closed-form rewriting (paper
    Fig. 1's [m]): a scalar with a loop-header φ merging a constant
    initial value with one unconditional constant-step increment is
    rewritten — definition {e and} uses — to its closed form over the
    loop index, after which the mapping pass naturally privatizes it
    without alignment. *)

open Hpf_lang

type iv = {
  var : string;
  loop_sid : Ast.stmt_id;  (** the loop stepping the variable *)
  incr_sid : Ast.stmt_id;  (** the [v = v + c] statement *)
  phi_def : Ssa.def_id;
  incr_def : Ssa.def_id;
  step_const : int;
  init_value : int;
  closed_form : Ast.expr;  (** value {e after} the increment *)
  closed_before : Ast.expr;  (** value {e before} the increment *)
}

(** Recognize the induction variables of a program in SSA form. *)
val analyze : Ssa.t -> Constprop.t -> iv list

(** Rewrite increments and uses to closed forms (statement ids
    preserved). *)
val rewrite : Ast.program -> Ssa.t -> iv list -> Ast.program

(** Build SSA, recognize, rewrite. *)
val run : Ast.program -> Ast.program * iv list
