(** Classic backward liveness on the CFG — "is this variable live at the
    loop exit" is the copy-out question of privatization. *)

open Hpf_lang

module SS : Set.S with type elt = string

type t = { live_in : SS.t array; live_out : SS.t array }

val compute : Cfg.t -> t

(** Is the variable live at the exit of the given loop? *)
val live_after_loop :
  Cfg.t -> t -> loop_sid:Ast.stmt_id -> var:string -> bool

(** Is the variable live on program entry (read before any write)? *)
val live_at_entry : Cfg.t -> t -> var:string -> bool
