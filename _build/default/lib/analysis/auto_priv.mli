(** Automatic array privatization — the paper's §7 future work, in the
    style of Tu & Padua (its [18]): an array is privatizable w.r.t. a
    loop when every read inside is covered, region-wise, by earlier
    unconditional same-iteration writes, and the array is dead after the
    loop.  Conservative: non-constant bounds or non-dense writes reject. *)

open Hpf_lang

type range = { lo : int; hi : int }

val contains : range -> range -> bool

(** Arrays automatically privatizable with respect to the given loop
    ([liveness_dead_after] answers the copy-out question). *)
val privatizable_in_loop :
  Ast.program -> Nest.t -> (string -> bool) -> Nest.loop_info -> string list

(** All automatically privatizable (loop, array) pairs of a program. *)
val analyze : Ast.program -> (Ast.stmt_id * string) list
