(** Sparse constant propagation over SSA definitions.

    A straightforward worklist evaluation on the three-level lattice
    [Top] (undetermined) / [Const v] / [Bottom] (varying).  Program
    parameters are folded in by {!Hpf_lang.Ast.subst_params} before
    evaluation.  Used to resolve loop bounds and the initial values of
    induction variables (paper §2.1: the closed form of [m] in Fig. 1
    needs [m]'s value on loop entry). *)

open Hpf_lang

type value = VInt of int | VReal of float | VBool of bool

type lattice = Top | Const of value | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bottom, _ | _, Bottom -> Bottom
  | Const x, Const y -> if x = y then a else Bottom

let pp_value ppf = function
  | VInt n -> Fmt.int ppf n
  | VReal f -> Fmt.float ppf f
  | VBool b -> Fmt.bool ppf b

type t = { ssa : Ssa.t; values : lattice array }

let to_float = function
  | VInt n -> float_of_int n
  | VReal f -> f
  | VBool _ -> nan

let eval_binop op a b =
  let open Ast in
  let arith fi ff =
    match (a, b) with
    | VInt x, VInt y -> Some (VInt (fi x y))
    | (VInt _ | VReal _), (VInt _ | VReal _) ->
        Some (VReal (ff (to_float a) (to_float b)))
    | _ -> None
  in
  let cmp f = Some (VBool (f (compare (to_float a) (to_float b)) 0)) in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> (
      match (a, b) with
      | VInt _, VInt 0 -> None
      | VInt x, VInt y -> Some (VInt (x / y))
      | (VInt _ | VReal _), (VInt _ | VReal _) ->
          Some (VReal (to_float a /. to_float b))
      | _ -> None)
  | Pow -> Some (VReal (Float.pow (to_float a) (to_float b)))
  | Eq -> cmp ( = )
  | Ne -> cmp ( <> )
  | Lt -> cmp ( < )
  | Le -> cmp ( <= )
  | Gt -> cmp ( > )
  | Ge -> cmp ( >= )
  | And -> ( match (a, b) with VBool x, VBool y -> Some (VBool (x && y)) | _ -> None)
  | Or -> ( match (a, b) with VBool x, VBool y -> Some (VBool (x || y)) | _ -> None)

let eval_unop op a =
  let open Ast in
  match (op, a) with
  | Neg, VInt n -> Some (VInt (-n))
  | Neg, VReal f -> Some (VReal (-.f))
  | Not, VBool b -> Some (VBool (not b))
  | Abs, VInt n -> Some (VInt (abs n))
  | Abs, VReal f -> Some (VReal (Float.abs f))
  | Sqrt, v -> Some (VReal (sqrt (to_float v)))
  | Exp, v -> Some (VReal (exp (to_float v)))
  | Log, v -> Some (VReal (log (to_float v)))
  | Sign, VInt n -> Some (VInt (compare n 0))
  | Sign, VReal f -> Some (VReal (if f >= 0.0 then 1.0 else -1.0))
  | (Neg | Not | Abs | Sign), _ -> None

let eval_intrin op a b =
  let open Ast in
  match (op, a, b) with
  | Min2, VInt x, VInt y -> Some (VInt (min x y))
  | Max2, VInt x, VInt y -> Some (VInt (max x y))
  | Mod2, VInt x, VInt y when y <> 0 -> Some (VInt (x mod y))
  | Min2, _, _ -> Some (VReal (Float.min (to_float a) (to_float b)))
  | Max2, _, _ -> Some (VReal (Float.max (to_float a) (to_float b)))
  | Mod2, _, _ -> None

(** Evaluate an expression to a lattice value given per-variable lookup. *)
let rec eval_expr (lookup : string -> lattice) (e : Ast.expr) : lattice =
  match e with
  | Int n -> Const (VInt n)
  | Real f -> Const (VReal f)
  | Bool b -> Const (VBool b)
  | Var v -> lookup v
  | Arr _ -> Bottom
  | Bin (op, a, b) -> (
      match (eval_expr lookup a, eval_expr lookup b) with
      | Const x, Const y -> (
          match eval_binop op x y with Some v -> Const v | None -> Bottom)
      | Top, _ | _, Top -> Top
      | _ -> Bottom)
  | Un (op, a) -> (
      match eval_expr lookup a with
      | Const x -> (
          match eval_unop op x with Some v -> Const v | None -> Bottom)
      | l -> l)
  | Intrin (op, a, b) -> (
      match (eval_expr lookup a, eval_expr lookup b) with
      | Const x, Const y -> (
          match eval_intrin op x y with Some v -> Const v | None -> Bottom)
      | Top, _ | _, Top -> Top
      | _ -> Bottom)

(** Expression defining a real (node) definition, if it is a scalar
    assignment; loop init/step nodes yield their index expressions. *)
let def_rhs (g : Cfg.t) (site : Ssa.def_site) : Ast.expr option =
  match site with
  | Ssa.Node_def { node; var } -> (
      match (Cfg.node g node).kind with
      | Cfg.Simple { node = Assign (LVar v, rhs); _ } when v = var -> Some rhs
      | Cfg.Loop_init { node = Do d; _ } when d.index = var -> Some d.lo
      | Cfg.Loop_step { node = Do d; _ } when d.index = var ->
          Some (Bin (Add, Var d.index, d.step))
      | _ -> None)
  | Ssa.Entry_def _ | Ssa.Phi _ -> None

let compute (ssa : Ssa.t) : t =
  let g = ssa.Ssa.cfg in
  let prog = g.Cfg.prog in
  let n = Array.length ssa.Ssa.defs in
  let values = Array.make n Top in
  (* seed: entry defs are Bottom (uninitialized / external) *)
  Array.iteri
    (fun i site ->
      match site with Ssa.Entry_def _ -> values.(i) <- Bottom | _ -> ())
    ssa.Ssa.defs;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i site ->
        let v' =
          match site with
          | Ssa.Entry_def _ -> Bottom
          | Ssa.Phi { args; _ } ->
              if args = [] then Bottom
              else
                List.fold_left
                  (fun acc (_, d) -> meet acc values.(d))
                  Top args
          | Ssa.Node_def { node; var = _ } -> (
              match def_rhs g site with
              | None -> Bottom (* array def or unanalyzed *)
              | Some rhs ->
                  let rhs = Ast.subst_params prog rhs in
                  let lookup x =
                    match Ssa.reaching_def_at ssa ~node ~var:x with
                    | Some d -> values.(d)
                    | None -> Bottom
                  in
                  eval_expr lookup rhs)
        in
        (* only move down the lattice *)
        let v' = meet values.(i) v' in
        if v' <> values.(i) then begin
          values.(i) <- v';
          changed := true
        end)
      ssa.Ssa.defs
  done;
  { ssa; values }

(** Constant value of [var] at the use site [node], if known. *)
let const_at (t : t) ~(node : int) ~(var : string) : value option =
  match Ssa.reaching_def_at t.ssa ~node ~var with
  | None -> None
  | Some d -> ( match t.values.(d) with Const v -> Some v | _ -> None)

let const_int_at (t : t) ~node ~var =
  match const_at t ~node ~var with Some (VInt n) -> Some n | _ -> None

(** Constant value produced by definition [d], if known. *)
let def_value (t : t) (d : Ssa.def_id) : value option =
  match t.values.(d) with Const v -> Some v | _ -> None
