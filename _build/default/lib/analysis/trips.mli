(** Loop trip counts for the communication cost model and the timing
    simulator: constant bounds give exact counts, unknown bounds a
    configurable default. *)

open Hpf_lang

val default_trip : int

(** Exact trip count when the bounds are compile-time constants. *)
val const_trip : Ast.program -> Ast.do_loop -> int option

(** Trip count with fallback. *)
val trip : ?default:int -> Ast.program -> Ast.do_loop -> int

(** Product of the trips of the given loops. *)
val product : ?default:int -> Ast.program -> Nest.loop_info list -> int

(** Iterations executed at nesting level [lv] around a statement. *)
val iterations_at_level :
  ?default:int -> Ast.program -> Nest.t -> sid:Ast.stmt_id -> int -> int
