(** Classic backward liveness analysis on the CFG.

    Used to answer "is variable [v] live at the exit of loop [L]" — a
    scalar definition cannot be privatized without copy-out when its value
    is observed after the loop.  (The SSA reached-uses walk answers the
    same question definition-by-definition; liveness gives the
    variable-level view and serves as a cross-check in tests.) *)

open Hpf_lang

module SS = Set.Make (String)

type t = {
  live_in : SS.t array;
  live_out : SS.t array;
}

let compute (g : Cfg.t) : t =
  let n = Cfg.n_nodes g in
  let live_in = Array.make n SS.empty in
  let live_out = Array.make n SS.empty in
  let uses = Array.init n (fun i -> SS.of_list (Cfg.uses g i)) in
  let defs = Array.init n (fun i -> SS.of_list (Cfg.defs g i)) in
  let order = List.rev (Cfg.reverse_postorder g) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        let out =
          List.fold_left
            (fun acc s -> SS.union acc live_in.(s))
            SS.empty (Cfg.node g i).succs
        in
        let inn = SS.union uses.(i) (SS.diff out defs.(i)) in
        if not (SS.equal out live_out.(i) && SS.equal inn live_in.(i))
        then begin
          live_out.(i) <- out;
          live_in.(i) <- inn;
          changed := true
        end)
      order
  done;
  { live_in; live_out }

(** Is [var] live at the exit of the loop whose header statement id is
    [loop_sid]?  (I.e. live-in at the loop's exit join node.) *)
let live_after_loop (g : Cfg.t) (t : t) ~(loop_sid : Ast.stmt_id)
    ~(var : string) : bool =
  let joins =
    List.filter
      (fun i ->
        match (Cfg.node g i).kind with
        | Cfg.Join (Some sid) -> sid = loop_sid
        | _ -> false)
      (Cfg.nodes_of_sid g loop_sid)
  in
  List.exists (fun j -> SS.mem var t.live_in.(j)) joins

(** Is [var] live on entry to the program? (Reads an undefined value.) *)
let live_at_entry (g : Cfg.t) (t : t) ~(var : string) : bool =
  SS.mem var t.live_in.(g.entry)
