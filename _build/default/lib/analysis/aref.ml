(** A reference — an array element or scalar occurrence at a statement.

    Alignment targets, producer/consumer references and communication
    descriptors are all values of this type. *)

open Hpf_lang

type t = {
  sid : Ast.stmt_id;  (** statement the reference occurs in *)
  base : string;
  subs : Ast.expr list;  (** [[]] for scalars *)
}

let scalar sid base = { sid; base; subs = [] }

let of_lhs (s : Ast.stmt) : t option =
  match s.node with
  | Assign (LVar v, _) -> Some { sid = s.sid; base = v; subs = [] }
  | Assign (LArr (a, subs), _) -> Some { sid = s.sid; base = a; subs }
  | If _ | Do _ | Exit _ | Cycle _ -> None

(** All rhs references of an assignment (array refs and scalar variables
    appearing in the rhs or in lhs subscripts), left to right.
    [include_lhs_subs] adds references appearing in the lhs subscripts. *)
let rhs_refs ?(include_lhs_subs = false) (prog : Ast.program)
    (s : Ast.stmt) : t list =
  let acc = ref [] in
  let add r = acc := r :: !acc in
  let rec expr (e : Ast.expr) =
    match e with
    | Int _ | Real _ | Bool _ -> ()
    | Var v ->
        if Ast.param_value prog v = None then
          add { sid = s.sid; base = v; subs = [] }
    | Arr (a, subs) ->
        add { sid = s.sid; base = a; subs };
        List.iter expr subs
    | Bin (_, a, b) | Intrin (_, a, b) ->
        expr a;
        expr b
    | Un (_, a) -> expr a
  in
  (match s.node with
  | Assign (lhs, rhs) ->
      expr rhs;
      if include_lhs_subs then begin
        match lhs with
        | LArr (_, subs) -> List.iter expr subs
        | LVar _ -> ()
      end
  | If (c, _, _) -> expr c
  | Do d ->
      expr d.lo;
      expr d.hi;
      expr d.step
  | Exit _ | Cycle _ -> ());
  List.rev !acc

(** Variables (not loop indices) used as subscripts of rhs array
    references of a statement, with the reference they subscript. *)
let subscript_uses (prog : Ast.program) (s : Ast.stmt) :
    (string * t) list =
  let out = ref [] in
  List.iter
    (fun (r : t) ->
      List.iter
        (fun sub ->
          List.iter
            (fun v ->
              if Ast.param_value prog v = None && not (Ast.is_array prog v)
              then out := (v, r) :: !out)
            (Ast.expr_vars sub))
        r.subs)
    (rhs_refs ~include_lhs_subs:true prog s);
  List.rev !out

let is_scalar (r : t) = r.subs = []

let equal (a : t) (b : t) =
  a.sid = b.sid
  && String.equal a.base b.base
  && List.length a.subs = List.length b.subs
  && List.for_all2 Ast.equal_expr a.subs b.subs

let pp ppf (r : t) =
  if r.subs = [] then Fmt.pf ppf "%s@@s%d" r.base r.sid
  else
    Fmt.pf ppf "%s(%a)@@s%d" r.base
      Fmt.(list ~sep:(any ", ") Pp.pp_expr)
      r.subs r.sid
