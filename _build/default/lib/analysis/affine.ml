(** Affine forms of subscript expressions over loop-index variables.

    A subscript [e] in the context of enclosing loop indices
    [i1, ..., ik] is {e affine} when it can be written
    [c0 + c1*i1 + ... + ck*ik] with integer constants [cj] (program
    parameters count as constants).  Affine forms drive the dependence
    tests ({!Depend}), ownership computation ({!Hpf_mapping.Ownership})
    and the paper's [SubscriptAlignLevel] ({!Phpf_core.Align_level}). *)

open Hpf_lang

type t = {
  const : int;
  terms : (string * int) list;
      (** [(index_var, coeff)] with nonzero coeff, in index order *)
}

let constant c = { const = c; terms = [] }

let is_constant a = a.terms = []

let coeff (a : t) (v : string) : int =
  match List.assoc_opt v a.terms with Some c -> c | None -> 0

(** Variables with nonzero coefficient. *)
let vars (a : t) : string list = List.map fst a.terms

let add (a : t) (b : t) : t =
  let keys =
    List.map fst a.terms
    @ List.filter (fun v -> not (List.mem_assoc v a.terms)) (List.map fst b.terms)
  in
  let terms =
    List.filter_map
      (fun v ->
        let c = coeff a v + coeff b v in
        if c = 0 then None else Some (v, c))
      keys
  in
  { const = a.const + b.const; terms }

let scale (k : int) (a : t) : t =
  if k = 0 then constant 0
  else
    {
      const = k * a.const;
      terms = List.map (fun (v, c) -> (v, k * c)) a.terms;
    }

let sub a b = add a (scale (-1) b)

let equal (a : t) (b : t) =
  let d = sub a b in
  d.const = 0 && d.terms = []

let pp ppf (a : t) =
  let pp_term ppf (v, c) =
    if c = 1 then Fmt.string ppf v
    else if c = -1 then Fmt.pf ppf "-%s" v
    else Fmt.pf ppf "%d*%s" c v
  in
  match a.terms with
  | [] -> Fmt.int ppf a.const
  | ts ->
      Fmt.pf ppf "%a" Fmt.(list ~sep:(any " + ") pp_term) ts;
      if a.const <> 0 then Fmt.pf ppf " + %d" a.const

(** Extract the affine form of [e] where [is_index v] identifies the loop
    index variables and [const_of v] resolves other variables that are
    compile-time constants (parameters).  Returns [None] when [e] is not
    affine (contains array refs, non-index non-constant scalars,
    multiplication of two index terms, division, ...). *)
let of_expr ~(is_index : string -> bool) ~(const_of : string -> int option)
    (e : Ast.expr) : t option =
  let ( let* ) = Option.bind in
  let rec go (e : Ast.expr) : t option =
    match e with
    | Int n -> Some (constant n)
    | Var v ->
        if is_index v then Some { const = 0; terms = [ (v, 1) ] }
        else
          let* c = const_of v in
          Some (constant c)
    | Bin (Add, a, b) ->
        let* a = go a in
        let* b = go b in
        Some (add a b)
    | Bin (Sub, a, b) ->
        let* a = go a in
        let* b = go b in
        Some (sub a b)
    | Bin (Mul, a, b) -> (
        let* a = go a in
        let* b = go b in
        match (is_constant a, is_constant b) with
        | true, _ -> Some (scale a.const b)
        | _, true -> Some (scale b.const a)
        | false, false -> None)
    | Bin (Div, a, b) -> (
        let* a = go a in
        let* b = go b in
        (* only exact constant division *)
        match (is_constant a, is_constant b) with
        | true, true when b.const <> 0 && a.const mod b.const = 0 ->
            Some (constant (a.const / b.const))
        | _ -> None)
    | Un (Neg, a) ->
        let* a = go a in
        Some (scale (-1) a)
    | Intrin (op, a, b) -> (
        let* a = go a in
        let* b = go b in
        match (op, is_constant a, is_constant b) with
        | Min2, true, true -> Some (constant (min a.const b.const))
        | Max2, true, true -> Some (constant (max a.const b.const))
        | Mod2, true, true when b.const <> 0 ->
            Some (constant (a.const mod b.const))
        | _ -> None)
    | Real _ | Bool _ | Arr _ | Bin _ | Un _ -> None
  in
  go e

(** Affine form in the context of a program and a statement's enclosing
    loop indices. *)
let of_subscript (p : Ast.program) ~(indices : string list) (e : Ast.expr) :
    t option =
  of_expr
    ~is_index:(fun v -> List.mem v indices)
    ~const_of:(fun v -> Ast.param_value p v)
    e

(** Convert back to an expression (canonical form, for reporting and for
    induction-variable rewriting). *)
let to_expr (a : t) : Ast.expr =
  let term (v, c) : Ast.expr =
    if c = 1 then Var v
    else if c = -1 then Un (Neg, Var v)
    else Bin (Mul, Int c, Var v)
  in
  match a.terms with
  | [] -> Int a.const
  | t0 :: rest ->
      let base =
        List.fold_left (fun acc t -> Ast.Bin (Add, acc, term t)) (term t0) rest
      in
      if a.const = 0 then base
      else if a.const > 0 then Bin (Add, base, Int a.const)
      else Bin (Sub, base, Int (-a.const))
