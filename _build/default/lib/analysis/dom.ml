(** Dominator tree and dominance frontiers.

    Iterative algorithm of Cooper, Harvey & Kennedy ("A Simple, Fast
    Dominance Algorithm"), followed by Cytron et al.'s dominance-frontier
    computation — the prerequisites for SSA construction. *)

type t = {
  idom : int array;  (** immediate dominator; [idom.(entry) = entry]; -1 for unreachable *)
  rpo_index : int array;  (** reverse-postorder number; -1 for unreachable *)
  frontiers : int list array;  (** dominance frontier per node *)
  children : int list array;  (** dominator-tree children *)
}

let compute (g : Cfg.t) : t =
  let n = Cfg.n_nodes g in
  let rpo = Cfg.reverse_postorder g in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun k i -> rpo_index.(i) <- k) rpo;
  let idom = Array.make n (-1) in
  idom.(g.entry) <- g.entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        if i <> g.entry then begin
          let preds =
            List.filter (fun p -> rpo_index.(p) >= 0) (Cfg.node g i).preds
          in
          let processed = List.filter (fun p -> idom.(p) >= 0) preds in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(i) <> new_idom then begin
                idom.(i) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  (* dominance frontiers *)
  let frontiers = Array.make n [] in
  List.iter
    (fun i ->
      let preds =
        List.filter (fun p -> rpo_index.(p) >= 0) (Cfg.node g i).preds
      in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let runner = ref p in
            while !runner <> idom.(i) do
              if not (List.mem i frontiers.(!runner)) then
                frontiers.(!runner) <- i :: frontiers.(!runner);
              runner := idom.(!runner)
            done)
          preds)
    rpo;
  let children = Array.make n [] in
  List.iter
    (fun i ->
      if i <> g.entry && idom.(i) >= 0 then
        children.(idom.(i)) <- i :: children.(idom.(i)))
    rpo;
  { idom; rpo_index; frontiers; children }

(** Does [a] dominate [b]?  (Reflexive.) *)
let dominates (d : t) (a : int) (b : int) : bool =
  if d.rpo_index.(b) < 0 then false
  else begin
    let rec up x = if x = a then true else if d.idom.(x) = x then false else up d.idom.(x) in
    up b
  end
