(** Reduction recognition.

    Recognizes the two shapes the paper's evaluation needs:

    - plain scalar reductions [s = s op e] with [op] one of +, *, min, max
      (Fig. 5: a sum across the [j]-loop);
    - conditional min/max with location (DGEFA's partial-pivoting
      {e maxloc}):
      {v
        if (e > s) then
          s = e
          l = k
        end if
      v}

    A recognized reduction names the innermost loop that accumulates it;
    {!Phpf_core.Reduction_map} later decides the mapping of [s] (and any
    location variables) following paper §2.3. *)

open Hpf_lang

type red_op = Rsum | Rprod | Rmax | Rmin

let pp_red_op ppf op =
  Fmt.string ppf
    (match op with
    | Rsum -> "sum"
    | Rprod -> "product"
    | Rmax -> "max"
    | Rmin -> "min")

type red = {
  var : string;
  op : red_op;
  loop_sid : Ast.stmt_id;  (** innermost loop carrying the accumulation *)
  stmt_sid : Ast.stmt_id;  (** the accumulating assignment (or the [If]) *)
  contrib : Ast.expr;  (** the contributed expression [e] *)
  loc_vars : (string * Ast.expr) list;
      (** companion location assignments inside a conditional reduction *)
  conditional : bool;
}

(* Does expression [e] mention variable [v]? *)
let mentions v e = List.mem v (Ast.expr_vars e)

(* Match "s = s op e" (either operand order for commutative ops). *)
let match_plain (lhs : string) (rhs : Ast.expr) : (red_op * Ast.expr) option =
  match rhs with
  | Bin (Add, Var v, e) when v = lhs && not (mentions lhs e) -> Some (Rsum, e)
  | Bin (Add, e, Var v) when v = lhs && not (mentions lhs e) -> Some (Rsum, e)
  | Bin (Mul, Var v, e) when v = lhs && not (mentions lhs e) -> Some (Rprod, e)
  | Bin (Mul, e, Var v) when v = lhs && not (mentions lhs e) -> Some (Rprod, e)
  | Intrin (Max2, Var v, e) when v = lhs && not (mentions lhs e) ->
      Some (Rmax, e)
  | Intrin (Max2, e, Var v) when v = lhs && not (mentions lhs e) ->
      Some (Rmax, e)
  | Intrin (Min2, Var v, e) when v = lhs && not (mentions lhs e) ->
      Some (Rmin, e)
  | Intrin (Min2, e, Var v) when v = lhs && not (mentions lhs e) ->
      Some (Rmin, e)
  | _ -> None

(* Match the conditional maxloc/minloc shape.  Returns
   (op, var, contrib, loc assignments). *)
let match_conditional (s : Ast.stmt) :
    (red_op * string * Ast.expr * (string * Ast.expr) list) option =
  match s.node with
  | If (cond, then_branch, []) -> (
      let cmp =
        match cond with
        | Bin (Gt, e, Var v) -> Some (Rmax, v, e)
        | Bin (Lt, Var v, e) -> Some (Rmax, v, e)
        | Bin (Ge, e, Var v) -> Some (Rmax, v, e)
        | Bin (Lt, e, Var v) -> Some (Rmin, v, e)
        | Bin (Gt, Var v, e) -> Some (Rmin, v, e)
        | Bin (Le, e, Var v) -> Some (Rmin, v, e)
        | _ -> None
      in
      match cmp with
      | None -> None
      | Some (op, v, e) ->
          (* then branch: exactly one "v = e" plus scalar location
             assignments not reading v *)
          let update = ref false in
          let locs = ref [] in
          let ok =
            List.for_all
              (fun (st : Ast.stmt) ->
                match st.node with
                | Assign (LVar lv, rhs) when lv = v ->
                    if Ast.equal_expr rhs e then begin
                      update := true;
                      true
                    end
                    else false
                | Assign (LVar lv, rhs)
                  when (not (mentions v rhs)) && not (mentions lv e) ->
                    locs := (lv, rhs) :: !locs;
                    true
                | _ -> false)
              then_branch
          in
          if ok && !update && not (mentions v e) then
            Some (op, v, e, List.rev !locs)
          else None)
  | _ -> None

(** Find reduction statements in a program.  A candidate is rejected when
    the accumulator is defined elsewhere inside the accumulating loop
    (the partial order would be observable). *)
let analyze (prog : Ast.program) : red list =
  let nest = Nest.build prog in
  let out = ref [] in
  (* all scalar defs per loop, to reject multiply-defined accumulators *)
  let defs_in_loop : (Ast.stmt_id * string, int) Hashtbl.t =
    Hashtbl.create 64
  in
  Ast.iter_program
    (fun s ->
      let def_var =
        match s.node with Assign (LVar v, _) -> Some v | _ -> None
      in
      match def_var with
      | None -> ()
      | Some v ->
          List.iter
            (fun (li : Nest.loop_info) ->
              let k = (li.loop_sid, v) in
              Hashtbl.replace defs_in_loop k
                (1
                + match Hashtbl.find_opt defs_in_loop k with
                  | Some n -> n
                  | None -> 0))
            (Nest.enclosing_loops nest s.sid))
    prog;
  let conditional_updates : (Ast.stmt_id * string) list ref = ref [] in
  (* First collect conditional reductions so their inner assigns are not
     reported as plain candidates. *)
  Ast.iter_program
    (fun s ->
      match match_conditional s with
      | Some (op, var, contrib, loc_vars) -> (
          match Nest.innermost_loop nest s.sid with
          | Some li
            when Hashtbl.find_opt defs_in_loop (li.loop_sid, var) = Some 1 ->
              List.iter
                (fun (st : Ast.stmt) ->
                  match st.node with
                  | Assign (LVar v, _) ->
                      conditional_updates := (st.sid, v) :: !conditional_updates
                  | _ -> ())
                (match s.node with If (_, t, _) -> t | _ -> []);
              out :=
                {
                  var;
                  op;
                  loop_sid = li.loop_sid;
                  stmt_sid = s.sid;
                  contrib;
                  loc_vars;
                  conditional = true;
                }
                :: !out
          | _ -> ())
      | None -> ())
    prog;
  Ast.iter_program
    (fun s ->
      match s.node with
      | Assign (LVar v, rhs)
        when not (List.mem (s.sid, v) !conditional_updates) -> (
          match match_plain v rhs with
          | Some (op, contrib) -> (
              match Nest.innermost_loop nest s.sid with
              | Some li
                when Hashtbl.find_opt defs_in_loop (li.loop_sid, v) = Some 1
                ->
                  out :=
                    {
                      var = v;
                      op;
                      loop_sid = li.loop_sid;
                      stmt_sid = s.sid;
                      contrib;
                      loc_vars = [];
                      conditional = false;
                    }
                    :: !out
              | _ -> ())
          | None -> ())
      | _ -> ())
    prog;
  List.sort compare !out

(** The reduction (if any) accumulated by statement [sid]. *)
let reduction_of_stmt (reds : red list) (sid : Ast.stmt_id) : red option =
  List.find_opt (fun r -> r.stmt_sid = sid) reds
