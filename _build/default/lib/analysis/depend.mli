(** Data-dependence tests between array references: GCD, and interval
    bounding with affine (triangular) loop bounds; indices of loops
    shared by both references stay un-renamed.  Anything not disproved
    is conservatively a dependence. *)

open Hpf_lang

type var_bounds = { lo : Affine.t option; hi : Affine.t option }

(** Can [f = g] have a solution under the bounds environment? *)
val may_equal :
  env:(string * var_bounds) list -> Affine.t -> Affine.t -> bool

type ref_ctx = { sid : Ast.stmt_id; base : string; subs : Ast.expr list }

(** May the write and the read touch a common element?  [shared_level] =
    number of outermost loops whose index is common to both (same
    iteration); deeper write indices are renamed apart. *)
val may_conflict :
  ?shared_level:int -> Ast.program -> Nest.t -> ref_ctx -> ref_ctx -> bool

(** Do writes of the read's array inside the loop possibly produce values
    the read consumes?  (If so, communication for the read cannot be
    vectorized out of that loop.) *)
val write_feeds_read_in_loop :
  Ast.program -> Nest.t -> Nest.loop_info -> ref_ctx -> bool
