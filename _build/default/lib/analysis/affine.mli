(** Affine forms of subscript expressions over loop-index variables:
    [c0 + c1*i1 + ... + ck*ik] with integer coefficients (program
    parameters fold into the constant).  Drives the dependence tests,
    ownership computation and the paper's [SubscriptAlignLevel]. *)

open Hpf_lang

type t = {
  const : int;
  terms : (string * int) list;
      (** (index variable, coefficient), nonzero coefficients only *)
}

val constant : int -> t
val is_constant : t -> bool

(** Coefficient of a variable (0 when absent). *)
val coeff : t -> string -> int

(** Variables with nonzero coefficient. *)
val vars : t -> string list

val add : t -> t -> t
val scale : int -> t -> t
val sub : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Extract the affine form of an expression, where [is_index] identifies
    loop indices and [const_of] resolves other compile-time-constant
    variables.  [None] when not affine. *)
val of_expr :
  is_index:(string -> bool) ->
  const_of:(string -> int option) ->
  Ast.expr ->
  t option

(** {!of_expr} in the context of a program (parameters as constants) and
    a statement's enclosing loop indices. *)
val of_subscript : Ast.program -> indices:string list -> Ast.expr -> t option

(** Canonical expression form (inverse of {!of_subscript} up to
    normalization). *)
val to_expr : t -> Ast.expr
