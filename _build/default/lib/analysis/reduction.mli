(** Reduction recognition: plain accumulations [s = s op e] for
    op ∈ {+, *, min, max}, and conditional min/max with location
    companions (DGEFA's partial-pivoting maxloc). *)

open Hpf_lang

type red_op = Rsum | Rprod | Rmax | Rmin

val pp_red_op : Format.formatter -> red_op -> unit

type red = {
  var : string;  (** the accumulator *)
  op : red_op;
  loop_sid : Ast.stmt_id;  (** innermost loop carrying the accumulation *)
  stmt_sid : Ast.stmt_id;  (** the accumulating assignment (or the If) *)
  contrib : Ast.expr;  (** the contributed expression *)
  loc_vars : (string * Ast.expr) list;
      (** companion location assignments of a conditional reduction *)
  conditional : bool;
}

(** Find the reductions of a program (candidates whose accumulator is
    written elsewhere in the loop are rejected). *)
val analyze : Ast.program -> red list

(** The reduction accumulated by a given statement, if any. *)
val reduction_of_stmt : red list -> Ast.stmt_id -> red option
