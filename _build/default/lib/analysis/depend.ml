(** Data-dependence tests between array references.

    Used by communication placement ({!Hpf_comm.Vectorize}): a
    communication for a read reference can be hoisted out of a loop only
    when no write inside that loop produces values the read consumes
    (a loop-carried or loop-independent true dependence).

    The per-dimension test handles triangular nests: loop bounds are kept
    as affine forms over outer indices ([do j = k+1, n]), indices of
    loops {e shared} by both references (outer to the hoisting loop) are
    not renamed apart, and the subscript-difference is bounded by
    interval substitution from the innermost variable outward.  A GCD
    test covers the strided case; anything not disproved is
    conservatively a dependence. *)

open Hpf_lang

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Affine bounds of a loop index over the enclosing indices, when
    available. *)
type var_bounds = {
  lo : Affine.t option;
  hi : Affine.t option;
}

(* Bounds of each loop index around statement [sid], innermost first.
   Each bound may reference outer indices (triangular loops). *)
let bounds_env (prog : Ast.program) (nest : Nest.t) (sid : Ast.stmt_id)
    ~(rename : string -> string) ~(renamed_from : int) :
    (string * var_bounds) list =
  let loops = Nest.enclosing_loops nest sid in
  List.mapi
    (fun k (li : Nest.loop_info) ->
      (* outer indices visible in this loop's bounds *)
      let outer =
        List.filteri (fun k' _ -> k' < k) loops
        |> List.map (fun (l : Nest.loop_info) -> l.loop.index)
      in
      let name_of v =
        (* bounds written in terms of outer indices, applying the same
           renaming that was applied to those indices *)
        let pos = ref (-1) in
        List.iteri (fun k' x -> if String.equal x v then pos := k') outer;
        if !pos >= 0 && !pos >= renamed_from then rename v else v
      in
      let aff e =
        match
          Affine.of_expr
            ~is_index:(fun v -> List.mem v outer)
            ~const_of:(fun v -> Ast.param_value prog v)
            e
        with
        | Some a ->
            Some
              {
                Affine.const = a.Affine.const;
                terms =
                  List.map (fun (v, c) -> (name_of v, c)) a.Affine.terms;
              }
        | None -> None
      in
      let idx_name = if k >= renamed_from then rename li.loop.index else li.loop.index in
      let step_one =
        match Ast.const_int_opt prog li.loop.step with
        | Some 1 -> true
        | _ -> false
      in
      if step_one then (idx_name, { lo = aff li.loop.lo; hi = aff li.loop.hi })
      else (idx_name, { lo = None; hi = None }))
    loops

(* Interval of an affine form, substituting bounded variables from the
   end of [env] (innermost) outward.  Returns (lo, hi) as constants when
   fully resolvable. *)
let interval (d : Affine.t) (env : (string * var_bounds) list) :
    (int * int) option =
  (* substitute variables in reverse declaration order: innermost loops
     first, since their bounds may mention outer indices *)
  let rec subst (lo : Affine.t) (hi : Affine.t) = function
    | [] ->
        if Affine.is_constant lo && Affine.is_constant hi then
          Some (lo.Affine.const, hi.Affine.const)
        else None
    | (v, b) :: rest ->
        let sub_one (f : Affine.t) ~(use_lo : bool) : Affine.t option =
          let c = Affine.coeff f v in
          if c = 0 then Some f
          else begin
            let bound = if (c > 0) = use_lo then b.lo else b.hi in
            match bound with
            | None -> None
            | Some bf ->
                let without =
                  {
                    Affine.const = f.Affine.const;
                    terms =
                      List.filter
                        (fun (x, _) -> not (String.equal x v))
                        f.Affine.terms;
                  }
                in
                Some (Affine.add without (Affine.scale c bf))
          end
        in
        ( match (sub_one lo ~use_lo:true, sub_one hi ~use_lo:false) with
        | Some lo', Some hi' -> subst lo' hi' rest
        | _ -> None )
  in
  subst d d (List.rev env)

(* Can  f = g  have a solution, where f and g are affine over (possibly
   shared) index variables, with a bounds environment? *)
let may_equal ~(env : (string * var_bounds) list) (f : Affine.t)
    (g : Affine.t) : bool =
  let d = Affine.sub f g in
  if Affine.is_constant d then d.Affine.const = 0
  else begin
    (* GCD test *)
    let coeffs = List.map snd d.Affine.terms in
    let gc = List.fold_left gcd 0 coeffs in
    if gc <> 0 && d.Affine.const mod gc <> 0 then false
    else begin
      match interval d env with
      | Some (lo, hi) -> lo <= 0 && 0 <= hi
      | None -> true
    end
  end

(** Context for a reference. *)
type ref_ctx = {
  sid : Ast.stmt_id;
  base : string;
  subs : Ast.expr list;
}

(** May the write reference and the read reference touch a common
    element?  [shared_level] gives the number of outermost loops whose
    index is {e common} to both references (same iteration): typically
    the loops enclosing the hoisting loop.  Deeper indices of the write
    are renamed apart from the read's. *)
let may_conflict ?(shared_level = 0) (prog : Ast.program) (nest : Nest.t)
    (w : ref_ctx) (r : ref_ctx) : bool =
  if not (String.equal w.base r.base) then false
  else if List.length w.subs <> List.length r.subs then true
  else begin
    let rename v = v ^ "'" in
    let w_indices = Nest.enclosing_indices nest w.sid in
    let r_indices = Nest.enclosing_indices nest r.sid in
    let w_aff sub =
      match Affine.of_subscript prog ~indices:w_indices sub with
      | Some a ->
          (* rename write indices deeper than the shared prefix *)
          Some
            {
              Affine.const = a.Affine.const;
              terms =
                List.map
                  (fun (v, c) ->
                    let lvl =
                      let rec pos k = function
                        | [] -> -1
                        | x :: _ when String.equal x v -> k
                        | _ :: tl -> pos (k + 1) tl
                      in
                      pos 0 w_indices
                    in
                    if lvl >= shared_level then (rename v, c) else (v, c))
                  a.Affine.terms;
            }
      | None -> None
    in
    let r_aff sub = Affine.of_subscript prog ~indices:r_indices sub in
    let env =
      bounds_env prog nest r.sid ~rename ~renamed_from:max_int
      @ bounds_env prog nest w.sid ~rename ~renamed_from:shared_level
    in
    List.for_all2
      (fun ws rs ->
        match (w_aff ws, r_aff rs) with
        | Some fa, Some fb -> may_equal ~env fa fb
        | _ -> true)
      w.subs r.subs
  end

(** Is there a possible flow of values from writes of [r.base] performed
    inside loop [li] to the read [r] (also inside [li])?  Used to decide
    whether communication for [r] may be vectorized out of [li].  Loops
    enclosing [li] contribute shared (un-renamed) indices. *)
let write_feeds_read_in_loop (prog : Ast.program) (nest : Nest.t)
    (li : Nest.loop_info) (r : ref_ctx) : bool =
  let shared_level = li.Nest.level - 1 in
  let found = ref false in
  Ast.iter_stmts
    (fun s ->
      match s.node with
      | Assign (LArr (a, subs), _) when String.equal a r.base ->
          if
            may_conflict ~shared_level prog nest
              { sid = s.sid; base = a; subs }
              r
          then found := true
      | Assign (LVar v, _) when String.equal v r.base ->
          (* scalar: any write to the same scalar feeds the read *)
          found := true
      | _ -> ())
    li.Nest.loop.body;
  !found
