(** Loop trip counts, used by the communication cost model and the timing
    simulator.  Constant bounds (after parameter substitution) give exact
    counts; unknown bounds fall back to a configurable default. *)

open Hpf_lang

let default_trip = 16

(** Trip count of a loop, when its bounds are compile-time constants. *)
let const_trip (prog : Ast.program) (d : Ast.do_loop) : int option =
  match
    (Ast.const_int_opt prog d.lo, Ast.const_int_opt prog d.hi,
     Ast.const_int_opt prog d.step)
  with
  | Some lo, Some hi, Some step when step <> 0 ->
      let n = ((hi - lo) / step) + 1 in
      Some (max 0 n)
  | _ -> None

(** Trip count with fallback. *)
let trip ?(default = default_trip) (prog : Ast.program) (d : Ast.do_loop) :
    int =
  match const_trip prog d with Some n -> n | None -> default

(** Product of the trip counts of the given loops. *)
let product ?default (prog : Ast.program) (loops : Nest.loop_info list) :
    int =
  List.fold_left (fun acc li -> acc * trip ?default prog li.Nest.loop) 1 loops

(** Iterations executed at nesting level [lv] around statement [sid]:
    the product of trips of loops at levels 1..lv. *)
let iterations_at_level ?default (prog : Ast.program) (nest : Nest.t)
    ~(sid : Ast.stmt_id) (lv : int) : int =
  let loops = Nest.enclosing_loops nest sid in
  let upto = List.filteri (fun i _ -> i < lv) loops in
  product ?default prog upto
