(** Sparse constant propagation over SSA definitions (three-level
    lattice, optimistic worklist).  Resolves loop bounds and induction
    variables' initial values. *)

open Hpf_lang

type value = VInt of int | VReal of float | VBool of bool

type lattice = Top | Const of value | Bottom

val meet : lattice -> lattice -> lattice
val pp_value : Format.formatter -> value -> unit

type t = { ssa : Ssa.t; values : lattice array }

(** Evaluate an expression under a per-variable lattice lookup. *)
val eval_expr : (string -> lattice) -> Ast.expr -> lattice

val compute : Ssa.t -> t

(** Constant value of a variable at a use site, if known. *)
val const_at : t -> node:int -> var:string -> value option

val const_int_at : t -> node:int -> var:string -> int option

(** Constant produced by a definition, if known. *)
val def_value : t -> Ssa.def_id -> value option
