(** Static single assignment form (Cytron et al., the paper's [5]):
    minimal SSA over the {!Cfg}, with φ-functions on iterated dominance
    frontiers and a dominator-tree renaming walk.  Arrays participate
    with update semantics.

    The paper's algorithm works in terms of original variables:
    {!reached_uses} and {!reaching_defs} collapse φ-functions, reporting
    whether a value crossed a loop back edge on the way (the
    privatizability test's loop-carried-flow question). *)

type def_id = int

type def_site =
  | Entry_def of string  (** the variable's value on program entry *)
  | Node_def of { node : int; var : string }  (** a real definition *)
  | Phi of { node : int; var : string; mutable args : (int * def_id) list }
      (** [args]: CFG predecessor -> incoming definition *)

type t = {
  cfg : Cfg.t;
  dom : Dom.t;
  defs : def_site array;
  use_def : (int * string, def_id) Hashtbl.t;
      (** (node, var) -> reaching definition at that use site *)
  def_real_uses : (def_id, (int * string) list) Hashtbl.t;
  def_phi_uses : (def_id, (def_id * int) list) Hashtbl.t;
      (** φ-functions using each definition, with the incoming pred *)
  node_def : (int * string, def_id) Hashtbl.t;
  phi_at : (int * string, def_id) Hashtbl.t;
}

val def_var : t -> def_id -> string
val def_node : t -> def_id -> int option
val is_phi : t -> def_id -> bool

(** Is [pred -> node] a loop back edge?  (In our structured CFGs: the
    [Loop_step -> Loop_head] edge of a loop.) *)
val is_back_edge : Cfg.t -> pred:int -> node:int -> bool

val build : Cfg.t -> t

(** The SSA definition reaching the use of [var] at a node. *)
val reaching_def_at : t -> node:int -> var:string -> def_id option

(** The real definition made by a node, if any. *)
val def_at : t -> node:int -> var:string -> def_id option

(** A use of a definition's value after φ-collapse; [back_edges] lists
    the loop-head nodes whose back edge the value crossed (loops that
    carry the flow into a later iteration). *)
type use_info = { use_node : int; use_var : string; back_edges : int list }

(** All real uses transitively reached by a definition. *)
val reached_uses : t -> def_id -> use_info list

(** All real (or entry) definitions that may reach a use, φ-collapsed. *)
val reaching_defs : t -> node:int -> var:string -> def_id list

(** All real definitions of a variable. *)
val defs_of_var : t -> string -> def_id list

val pp_def : t -> Format.formatter -> def_id -> unit
