(** Automatic array privatization — the paper's stated future work
    ("we plan to integrate our mapping techniques with automatic array
    privatization", §7), in the style of Tu & Padua (the paper's [18]).

    An array [A] is automatically privatizable with respect to loop [L]
    when, in every iteration of [L],

    + every read of [A] inside [L] is {e covered} by writes performed
      earlier in the same iteration (no upward-exposed reads), and
    + [A]'s value is dead after [L] (no copy-out needed).

    Coverage is established region-wise per dimension: an unconditional
    write nest [A(f1..fk) = ...] whose subscripts are dense (unit
    coefficient) affine functions of its enclosing loops covers, in one
    [L]-iteration, the rectangular region spanned by those loops; a read
    is covered when its per-dimension value range is contained in a
    preceding write's region.  Ranges come from constant loop bounds —
    anything non-constant or non-dense falls back to "not privatizable"
    (the analysis is conservative). *)

open Hpf_lang

(* Per-dimension integer range. *)
type range = { lo : int; hi : int }

let contains (outer : range) (inner : range) =
  outer.lo <= inner.lo && inner.hi <= outer.hi

(* Range of an affine subscript over the loops between the target loop
   and the statement (exclusive of the target loop's own index, which
   must not appear).  Returns None when any needed bound is unknown or
   the target loop's index occurs. *)
let subscript_range (prog : Ast.program) (nest : Nest.t)
    ~(sid : Ast.stmt_id) ~(outer_index : string) (sub : Ast.expr) :
    range option =
  let indices = Nest.enclosing_indices nest sid in
  match Affine.of_subscript prog ~indices sub with
  | None -> None
  | Some a ->
      if Affine.coeff a outer_index <> 0 then None
      else begin
        let loops = Nest.enclosing_loops nest sid in
        let bounds_of v =
          List.find_map
            (fun (li : Nest.loop_info) ->
              if String.equal li.loop.index v then
                match
                  ( Ast.const_int_opt prog li.loop.lo,
                    Ast.const_int_opt prog li.loop.hi,
                    Ast.const_int_opt prog li.loop.step )
                with
                | Some lo, Some hi, Some 1 when lo <= hi ->
                    Some (lo, hi)
                | _ -> Some (1, 0) (* unknown: poison *)
              else None)
            loops
        in
        let lo = ref a.Affine.const and hi = ref a.Affine.const in
        let ok = ref true in
        List.iter
          (fun (v, c) ->
            match bounds_of v with
            | Some (l, h) when l <= h ->
                if c > 0 then begin
                  lo := !lo + (c * l);
                  hi := !hi + (c * h)
                end
                else begin
                  lo := !lo + (c * h);
                  hi := !hi + (c * l)
                end
            | _ -> ok := false)
          a.Affine.terms;
        if !ok then Some { lo = !lo; hi = !hi } else None
      end

(* Is the write subscript dense (covers every integer of its range)?
   True for constants and for affine forms with exactly one varying
   index of coefficient +-1. *)
let dense (prog : Ast.program) (nest : Nest.t) ~(sid : Ast.stmt_id)
    (sub : Ast.expr) : bool =
  let indices = Nest.enclosing_indices nest sid in
  match Affine.of_subscript prog ~indices sub with
  | None -> false
  | Some a -> (
      match a.Affine.terms with
      | [] -> true
      | [ (_, c) ] -> abs c = 1
      | _ -> false)

(* Is statement [sid] inside an If within [body]?  (Conditional writes
   do not establish coverage.) *)
let unconditional_in (body : Ast.stmt list) (sid : Ast.stmt_id) : bool =
  let rec go ~under_if stmts =
    List.exists
      (fun (s : Ast.stmt) ->
        (s.sid = sid && not under_if)
        ||
        match s.node with
        | Ast.If (_, t, e) ->
            go ~under_if:true t || go ~under_if:true e
        | Ast.Do d -> go ~under_if d.body
        | _ -> false)
      stmts
  in
  go ~under_if:false body

(** Arrays written inside loop [li] whose reads are all covered by
    earlier same-iteration writes and that are dead after the loop. *)
let privatizable_in_loop (prog : Ast.program) (nest : Nest.t)
    (liveness_dead_after : string -> bool) (li : Nest.loop_info) :
    string list =
  let outer_index = li.loop.index in
  (* collect writes and reads of each array inside the loop, in textual
     order *)
  let events = ref [] in
  Ast.iter_stmts
    (fun s ->
      (match s.node with
      | Ast.Assign (Ast.LArr (a, subs), _) ->
          events := (`Write, s.sid, a, subs) :: !events
      | _ -> ());
      List.iter
        (fun e ->
          Ast.iter_expr
            (function
              | Ast.Arr (a, subs) ->
                  events := (`Read, s.sid, a, subs) :: !events
              | _ -> ())
            e)
        (Ast.own_exprs s))
    li.loop.body;
  let events = List.rev !events in
  let arrays =
    List.filter_map
      (fun (k, _, a, _) -> if k = `Write then Some a else None)
      events
    |> List.sort_uniq String.compare
  in
  List.filter
    (fun a ->
      liveness_dead_after a
      &&
      (* every read of a is covered by an earlier write region *)
      let written_regions = ref [] in
      let ok = ref true in
      List.iter
        (fun (kind, sid, base, subs) ->
          if String.equal base a && !ok then
            match kind with
            | `Write ->
                let region =
                  List.map
                    (fun sub ->
                      if
                        dense prog nest ~sid sub
                        && unconditional_in li.loop.body sid
                      then
                        subscript_range prog nest ~sid ~outer_index sub
                      else None)
                    subs
                in
                if List.for_all Option.is_some region then
                  written_regions :=
                    List.map Option.get region :: !written_regions
            | `Read -> (
                let read_region =
                  List.map
                    (fun sub ->
                      subscript_range prog nest ~sid ~outer_index sub)
                    subs
                in
                match
                  List.map (function Some r -> r | None -> { lo = 1; hi = 0 })
                    read_region
                with
                | rr
                  when List.for_all Option.is_some read_region
                       && List.exists
                            (fun wr ->
                              List.length wr = List.length rr
                              && List.for_all2 contains wr rr)
                            !written_regions ->
                    ()
                | _ -> ok := false))
        events;
      !ok)
    arrays

(** Automatically privatizable (loop, array) pairs of a whole program. *)
let analyze (prog : Ast.program) : (Ast.stmt_id * string) list =
  let nest = Nest.build prog in
  let g = Cfg.build prog in
  let lv = Liveness.compute g in
  List.concat_map
    (fun (li : Nest.loop_info) ->
      let dead_after a =
        not (Liveness.live_after_loop g lv ~loop_sid:li.loop_sid ~var:a)
      in
      List.map
        (fun a -> (li.loop_sid, a))
        (privatizable_in_loop prog nest dead_after li))
    nest.Nest.loops
