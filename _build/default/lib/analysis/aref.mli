(** A reference — an array element or scalar occurrence at a statement.
    Alignment targets, producer/consumer references and communication
    descriptors are all values of this type. *)

open Hpf_lang

type t = {
  sid : Ast.stmt_id;  (** the statement the reference occurs in *)
  base : string;
  subs : Ast.expr list;  (** [[]] for scalars *)
}

val scalar : Ast.stmt_id -> string -> t

(** The lhs reference of an assignment, if any. *)
val of_lhs : Ast.stmt -> t option

(** Read references of a statement (rhs array refs and scalars; [If]
    predicates; [Do] bounds), left to right; [include_lhs_subs] adds the
    references inside lhs subscripts. *)
val rhs_refs : ?include_lhs_subs:bool -> Ast.program -> Ast.stmt -> t list

(** Scalar variables used as subscripts of rhs array references, paired
    with the reference they subscript. *)
val subscript_uses : Ast.program -> Ast.stmt -> (string * t) list

val is_scalar : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
