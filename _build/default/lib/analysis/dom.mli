(** Dominator tree and dominance frontiers (Cooper-Harvey-Kennedy
    iterative dominators; Cytron et al. frontiers) — the prerequisites
    for SSA construction. *)

type t = {
  idom : int array;
      (** immediate dominator; [idom.(entry) = entry]; -1 unreachable *)
  rpo_index : int array;  (** reverse-postorder number; -1 unreachable *)
  frontiers : int list array;  (** dominance frontier per node *)
  children : int list array;  (** dominator-tree children *)
}

val compute : Cfg.t -> t

(** Does [a] dominate [b]?  (Reflexive.) *)
val dominates : t -> int -> int -> bool
