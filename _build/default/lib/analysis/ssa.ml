(** Static single assignment form (Cytron et al., the paper's [5]).

    Minimal SSA over the CFG of {!Cfg}: φ-functions are placed on the
    iterated dominance frontier of each variable's definition sites, and a
    dominator-tree walk renames uses to point at their unique reaching
    definition.  Arrays participate with update semantics (an element
    assignment both defines and uses the array name).

    The paper's mapping algorithm works in terms of the {e original}
    variables: "reached uses of a definition" and "reaching definitions of
    a use" with φ-functions collapsed.  {!reached_uses} and
    {!reaching_defs} implement that collapse, additionally reporting
    whether the value flowed across a loop back edge (needed by the
    privatizability test). *)

type def_id = int

type def_site =
  | Entry_def of string
      (** the variable's value on entry to the program (version 0) *)
  | Node_def of { node : int; var : string }  (** a real definition *)
  | Phi of { node : int; var : string; mutable args : (int * def_id) list }
      (** [args] maps each CFG predecessor to the incoming definition *)

type t = {
  cfg : Cfg.t;
  dom : Dom.t;
  defs : def_site array;
  use_def : (int * string, def_id) Hashtbl.t;
      (** (node, var) -> reaching definition at that use site *)
  def_real_uses : (def_id, (int * string) list) Hashtbl.t;
      (** real (non-φ) uses of each definition *)
  def_phi_uses : (def_id, (def_id * int) list) Hashtbl.t;
      (** φ-functions using each definition, with the incoming pred node *)
  node_def : (int * string, def_id) Hashtbl.t;
  phi_at : (int * string, def_id) Hashtbl.t;
}

let def_var (t : t) (d : def_id) : string =
  match t.defs.(d) with
  | Entry_def v -> v
  | Node_def { var; _ } -> var
  | Phi { var; _ } -> var

let def_node (t : t) (d : def_id) : int option =
  match t.defs.(d) with
  | Entry_def _ -> None
  | Node_def { node; _ } | Phi { node; _ } -> Some node

let is_phi (t : t) (d : def_id) : bool =
  match t.defs.(d) with Phi _ -> true | Entry_def _ | Node_def _ -> false

(** Is the CFG edge [pred -> node] a loop back edge?  In our structured
    CFGs the only back edges are [Loop_step -> Loop_head] of the same
    loop. *)
let is_back_edge (g : Cfg.t) ~(pred : int) ~(node : int) : bool =
  match ((Cfg.node g pred).kind, (Cfg.node g node).kind) with
  | Cfg.Loop_step s1, Cfg.Loop_head s2 -> s1.sid = s2.sid
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let build (g : Cfg.t) : t =
  let dom = Dom.compute g in
  let n = Cfg.n_nodes g in
  let reachable = Cfg.is_reachable g in
  let vars = Cfg.variables g in
  let defs_tbl : def_site list ref = ref [] in
  let n_defs = ref 0 in
  let new_def site =
    let id = !n_defs in
    incr n_defs;
    defs_tbl := site :: !defs_tbl;
    id
  in
  let node_def = Hashtbl.create 128 in
  let phi_at = Hashtbl.create 64 in
  (* entry defs for all variables *)
  let entry_def = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace entry_def v (new_def (Entry_def v))) vars;
  (* real defs *)
  for i = 0 to n - 1 do
    if reachable.(i) then
      List.iter
        (fun v ->
          Hashtbl.replace node_def (i, v) (new_def (Node_def { node = i; var = v })))
        (Cfg.defs g i)
  done;
  (* φ placement: iterated dominance frontier of def sites (incl. entry) *)
  List.iter
    (fun v ->
      let work = Queue.create () in
      let on_work = Array.make n false in
      for i = 0 to n - 1 do
        if reachable.(i) && List.mem v (Cfg.defs g i) then begin
          Queue.add i work;
          on_work.(i) <- true
        end
      done;
      (* entry node is also a def site (Entry_def) *)
      if not on_work.(g.entry) then begin
        Queue.add g.entry work;
        on_work.(g.entry) <- true
      end;
      let has_phi = Array.make n false in
      while not (Queue.is_empty work) do
        let x = Queue.pop work in
        List.iter
          (fun y ->
            if (not has_phi.(y)) && reachable.(y) then begin
              has_phi.(y) <- true;
              Hashtbl.replace phi_at (y, v)
                (new_def (Phi { node = y; var = v; args = [] }));
              if not on_work.(y) then begin
                Queue.add y work;
                on_work.(y) <- true
              end
            end)
          dom.frontiers.(x)
      done)
    vars;
  let defs = Array.of_list (List.rev !defs_tbl) in
  (* renaming *)
  let use_def = Hashtbl.create 256 in
  let stacks : (string, def_id list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun v -> Hashtbl.replace stacks v (ref [ Hashtbl.find entry_def v ]))
    vars;
  let top v =
    match !(Hashtbl.find stacks v) with
    | d :: _ -> d
    | [] -> Hashtbl.find entry_def v
  in
  let push v d =
    let s = Hashtbl.find stacks v in
    s := d :: !s
  in
  let pop v =
    let s = Hashtbl.find stacks v in
    match !s with [] -> () | _ :: tl -> s := tl
  in
  let rec rename (i : int) =
    let pushed = ref [] in
    (* φ defs first *)
    List.iter
      (fun v ->
        match Hashtbl.find_opt phi_at (i, v) with
        | Some d ->
            push v d;
            pushed := v :: !pushed
        | None -> ())
      vars;
    (* uses see pre-def values (after φ) *)
    List.iter (fun v -> Hashtbl.replace use_def (i, v) (top v)) (Cfg.uses g i);
    (* real defs *)
    List.iter
      (fun v ->
        match Hashtbl.find_opt node_def (i, v) with
        | Some d ->
            push v d;
            pushed := v :: !pushed
        | None -> ())
      (Cfg.defs g i);
    (* fill φ args of successors *)
    List.iter
      (fun s ->
        List.iter
          (fun v ->
            match Hashtbl.find_opt phi_at (s, v) with
            | Some d -> (
                match defs.(d) with
                | Phi p ->
                    if not (List.mem_assoc i p.args) then
                      p.args <- (i, top v) :: p.args
                | Entry_def _ | Node_def _ -> assert false)
            | None -> ())
          vars)
      (Cfg.node g i).succs;
    (* recurse into dominator-tree children *)
    List.iter rename dom.children.(i);
    List.iter pop !pushed
  in
  rename g.entry;
  (* invert use_def into def -> uses, and collect φ arg uses *)
  let def_real_uses = Hashtbl.create 128 in
  let def_phi_uses = Hashtbl.create 128 in
  Hashtbl.iter
    (fun (node, var) d ->
      let cur =
        match Hashtbl.find_opt def_real_uses d with Some l -> l | None -> []
      in
      Hashtbl.replace def_real_uses d ((node, var) :: cur))
    use_def;
  Array.iteri
    (fun phi_id site ->
      match site with
      | Phi { args; _ } ->
          List.iter
            (fun (pred, d) ->
              let cur =
                match Hashtbl.find_opt def_phi_uses d with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace def_phi_uses d ((phi_id, pred) :: cur))
            args
      | Entry_def _ | Node_def _ -> ())
    defs;
  { cfg = g; dom; defs; use_def; def_real_uses; def_phi_uses; node_def; phi_at }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(** The SSA definition reaching the use of [var] at CFG node [node]. *)
let reaching_def_at (t : t) ~(node : int) ~(var : string) : def_id option =
  Hashtbl.find_opt t.use_def (node, var)

(** The real definition of [var] at [node], if that node defines it. *)
let def_at (t : t) ~(node : int) ~(var : string) : def_id option =
  Hashtbl.find_opt t.node_def (node, var)

(** A use of a definition's value, after collapsing φ-functions.

    [back_edges] lists the loop-head CFG nodes whose back edge the value
    crossed on the way to this use (i.e. loops that carry this flow into
    a later iteration). *)
type use_info = { use_node : int; use_var : string; back_edges : int list }

(** All real uses transitively reached by definition [d] through
    φ-functions. *)
let reached_uses (t : t) (d : def_id) : use_info list =
  let module S = Set.Make (Int) in
  (* state: (def, set of crossed back-edge heads); fixpoint on growing sets *)
  let visited : (def_id, S.t list) Hashtbl.t = Hashtbl.create 32 in
  let results : (int * string, S.t) Hashtbl.t = Hashtbl.create 32 in
  let rec go d crossed =
    let seen =
      match Hashtbl.find_opt visited d with Some l -> l | None -> []
    in
    if List.exists (fun s -> S.subset crossed s) seen then ()
    else begin
      Hashtbl.replace visited d (crossed :: seen);
      (match Hashtbl.find_opt t.def_real_uses d with
      | Some uses ->
          List.iter
            (fun (node, var) ->
              let cur =
                match Hashtbl.find_opt results (node, var) with
                | Some s -> s
                | None -> S.empty
              in
              Hashtbl.replace results (node, var) (S.union cur crossed))
            uses
      | None -> ());
      match Hashtbl.find_opt t.def_phi_uses d with
      | Some phis ->
          List.iter
            (fun (phi_id, pred) ->
              match def_node t phi_id with
              | Some phi_node ->
                  let crossed' =
                    if is_back_edge t.cfg ~pred ~node:phi_node then
                      S.add phi_node crossed
                    else crossed
                  in
                  go phi_id crossed'
              | None -> ())
            phis
      | None -> ()
    end
  in
  go d S.empty;
  Hashtbl.fold
    (fun (node, var) crossed acc ->
      { use_node = node; use_var = var; back_edges = S.elements crossed }
      :: acc)
    results []
  |> List.sort compare

(** All real (or entry) definitions whose value may reach the use of
    [var] at [node], collapsing φ-functions. *)
let reaching_defs (t : t) ~(node : int) ~(var : string) : def_id list =
  match reaching_def_at t ~node ~var with
  | None -> []
  | Some d0 ->
      let visited = Hashtbl.create 16 in
      let out = ref [] in
      let rec go d =
        if not (Hashtbl.mem visited d) then begin
          Hashtbl.replace visited d ();
          match t.defs.(d) with
          | Entry_def _ | Node_def _ -> out := d :: !out
          | Phi { args; _ } -> List.iter (fun (_, a) -> go a) args
        end
      in
      go d0;
      List.sort compare !out

(** All real definitions of variable [var] (excluding the entry def). *)
let defs_of_var (t : t) (var : string) : def_id list =
  let out = ref [] in
  Array.iteri
    (fun i site ->
      match site with
      | Node_def { var = v; _ } when String.equal v var -> out := i :: !out
      | Node_def _ | Entry_def _ | Phi _ -> ())
    t.defs;
  List.rev !out

let pp_def (t : t) ppf (d : def_id) =
  match t.defs.(d) with
  | Entry_def v -> Fmt.pf ppf "%s@@entry" v
  | Node_def { node; var } -> Fmt.pf ppf "%s@@n%d" var node
  | Phi { node; var; args } ->
      Fmt.pf ppf "%s@@phi%d(%a)" var node
        Fmt.(list ~sep:comma (pair ~sep:(any ":") int int))
        args
