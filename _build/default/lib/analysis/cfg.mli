(** Control-flow graph construction: the structured AST lowered so the
    classical SSA construction applies unchanged.  A [DO] expands into
    [Loop_init -> Loop_head -> body ... -> Loop_step -> Loop_head], with
    [Loop_head -> Join] the exit; [EXIT] jumps to the exit join, [CYCLE]
    to the step node. *)

open Hpf_lang

type node_kind =
  | Entry
  | Exit_node
  | Simple of Ast.stmt  (** [Assign], [Exit], [Cycle] *)
  | Branch of Ast.stmt  (** [If] condition evaluation *)
  | Loop_init of Ast.stmt  (** index := lo *)
  | Loop_head of Ast.stmt  (** trip test *)
  | Loop_step of Ast.stmt  (** index := index + step *)
  | Join of Ast.stmt_id option  (** merge after an [If] or a loop exit *)

type node = {
  id : int;
  kind : node_kind;
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  prog : Ast.program;
  nodes : node array;
  entry : int;
  exit_ : int;
  by_sid : (Ast.stmt_id, int list) Hashtbl.t;
}

val node : t -> int -> node
val n_nodes : t -> int

(** Statement id a node originates from, if any. *)
val sid_of_node : t -> int -> Ast.stmt_id option

(** CFG nodes created for a statement (a [Do] yields init/head/step/join). *)
val nodes_of_sid : t -> Ast.stmt_id -> int list

exception Malformed of string

val build : Ast.program -> t

(** Is the variable tracked by SSA (not a compile-time parameter)? *)
val tracked : t -> string -> bool

(** Variables written by a node (an array-element assignment defines —
    and also uses — the array name). *)
val defs : t -> int -> string list

(** Variables read by a node. *)
val uses : t -> int -> string list

(** All tracked variables of the program, sorted. *)
val variables : t -> string list

(** Reverse postorder of the nodes reachable from entry. *)
val reverse_postorder : t -> int list

val is_reachable : t -> bool array
val pp_kind : Format.formatter -> node_kind -> unit
val pp : Format.formatter -> t -> unit
