(* Benchmark harness: regenerates the paper's Tables 1-3 on the machine
   simulator, and runs Bechamel microbenchmarks of the compiler passes.

   Usage:
     bench/main.exe                  -- all three tables, scaled sizes
     bench/main.exe table1|table2|table3 [--full]
     bench/main.exe micro            -- bechamel compiler-pass benches
     bench/main.exe ablation         -- design-choice ablations
*)

open Hpf_benchmarks

let size_of_args args =
  if List.mem "--full" args then `Full
  else if List.mem "--medium" args then `Medium
  else `Scaled

(* optional --procs=1,4,16 filter *)
let procs_of_args ~default args =
  List.fold_left
    (fun acc a ->
      match String.index_opt a '=' with
      | Some i when String.sub a 0 i = "--procs" ->
          String.sub a (i + 1) (String.length a - i - 1)
          |> String.split_on_char ','
          |> List.map int_of_string
      | _ -> acc)
    default args

let run_table1 args =
  let procs = procs_of_args ~default:[ 1; 2; 4; 8; 16 ] args in
  let t = Tables.table1 ~size:(size_of_args args) ~procs () in
  Fmt.pr "%a@." Tables.pp_table t;
  (match
     ( Tables.ratio t ~procs:16 ~worse:"Replication"
         ~better:"Selected Alignment",
       Tables.ratio t ~procs:16 ~worse:"Producer Alignment"
         ~better:"Selected Alignment",
       Tables.speedup t ~column:"Selected Alignment" ~from_procs:1
         ~to_procs:16 )
   with
  | Some r, Some rp, Some s ->
      Fmt.pr
        "  paper: selected alignment wins by >= 2 orders of magnitude at P=16; only it yields speedups@.";
      Fmt.pr
        "  measured: replication/selected = %.1fx, producer/selected = %.1fx, selected speedup P1->P16 = %.2fx@."
        r rp s
  | _ -> ());
  Fmt.pr "@."

let run_table2 args =
  let procs = procs_of_args ~default:[ 1; 2; 4; 8; 16 ] args in
  let t = Tables.table2 ~size:(size_of_args args) ~procs () in
  Fmt.pr "%a@." Tables.pp_table t;
  (match
     ( Tables.ratio t ~procs:16 ~worse:"Default" ~better:"Alignment",
       Tables.ratio t ~procs:2 ~worse:"Default" ~better:"Alignment" )
   with
  | Some r16, Some r2 ->
      Fmt.pr
        "  paper: replicated reduction scalar costs a roughly constant overhead, a growing fraction as P rises@.";
      Fmt.pr "  measured: default/alignment = %.2fx at P=2, %.2fx at P=16@."
        r2 r16
  | _ -> ());
  Fmt.pr "@."

let run_table3 args =
  let procs = procs_of_args ~default:[ 2; 4; 8; 16 ] args in
  let t = Tables.table3 ~size:(size_of_args args) ~procs () in
  Fmt.pr "%a@." Tables.pp_table t;
  (match
     ( Tables.ratio t ~procs:4 ~worse:"1-D, No Array Priv."
         ~better:"1-D, Priv.",
       Tables.ratio t ~procs:4 ~worse:"2-D, No Partial Priv."
         ~better:"2-D, Partial Priv." )
   with
  | Some r1, Some r2 ->
      Fmt.pr
        "  paper: without (partial) privatization both distributions are far slower (1-D aborted after a day)@.";
      Fmt.pr
        "  measured at P=4: no-priv/priv = %.1fx (1-D), no-partial/partial = %.1fx (2-D)@."
        r1 r2
  | _ -> ());
  Fmt.pr "@."

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let which =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  match which with
  | [] ->
      run_table1 args;
      run_table2 args;
      run_table3 args
  | [ "table1" ] -> run_table1 args
  | [ "table2" ] -> run_table2 args
  | [ "table3" ] -> run_table3 args
  | [ "micro" ] -> Micro.run ()
  | [ "ablation" ] -> Ablation.run ()
  | _ ->
      prerr_endline
        "usage: main.exe [table1|table2|table3|micro|ablation] [--full|--medium] [--procs=1,4,16]";
      exit 2
