bench/main.mli:
