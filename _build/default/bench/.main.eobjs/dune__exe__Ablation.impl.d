bench/ablation.ml: Comm Compiler Cost_model Decisions Dgefa Expansion Fig_examples Fmt Hpf_analysis Hpf_benchmarks Hpf_comm Hpf_spmd Init List Phpf_core Reduction_map Tomcatv Trace_sim Variants
