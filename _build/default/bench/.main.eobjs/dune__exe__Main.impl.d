bench/main.ml: Ablation Array Fmt Hpf_benchmarks List Micro String Sys Tables
