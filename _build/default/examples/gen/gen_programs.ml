(* Regenerates the textual benchmark programs under examples/programs/
   from the builder definitions (run from the repository root):

     dune exec examples/gen/gen_programs.exe
*)

open Hpf_lang
open Hpf_benchmarks

let write path prog =
  let p = Sema.check prog in
  let oc = open_out path in
  output_string oc (Pp.program_to_string p);
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  write "examples/programs/tomcatv.hpfk" (Tomcatv.program ~n:66 ~niter:10 ~p:8);
  write "examples/programs/dgefa.hpfk" (Dgefa.program ~n:96 ~p:8);
  write "examples/programs/appsp2d.hpfk"
    (Appsp.program_2d ~n:18 ~niter:2 ~p1:2 ~p2:2);
  write "examples/programs/appsp1d.hpfk" (Appsp.program_1d ~n:18 ~niter:2 ~p:4)
