examples/expansion_demo.ml: Compiler Expansion Fig_examples Fmt Hpf_benchmarks Hpf_lang Hpf_spmd Init List Phpf_core Pp Report Sema Spmd_interp Trace_sim
