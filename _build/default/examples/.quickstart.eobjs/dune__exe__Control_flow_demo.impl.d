examples/control_flow_demo.ml: Ast Builder Compiler Decisions Fig_examples Fmt Hpf_benchmarks Hpf_comm Hpf_lang Hpf_spmd Init List Phpf_core Spmd_interp
