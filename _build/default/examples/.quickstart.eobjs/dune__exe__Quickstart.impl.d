examples/quickstart.ml: Compiler Decisions Fmt Hpf_lang Hpf_spmd Init List Parser Phpf_core Pp Report Sema Spmd_interp Trace_sim
