examples/distribution_study.ml: Array Ast Compiler Fmt Hpf_benchmarks Hpf_lang Hpf_spmd Init List Phpf_core Sys Trace_sim
