examples/partial_priv_demo.mli:
