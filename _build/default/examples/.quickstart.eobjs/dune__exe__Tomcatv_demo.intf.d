examples/tomcatv_demo.mli:
