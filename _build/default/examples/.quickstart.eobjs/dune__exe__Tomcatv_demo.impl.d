examples/tomcatv_demo.ml: Array Ast Compiler Decisions Fmt Hpf_benchmarks Hpf_comm Hpf_lang Hpf_spmd Init List Nest Phpf_core Sys Tomcatv Trace_sim Variants
