examples/scaling_study.ml: Appsp Array Ast Compiler Dgefa Fmt Hpf_benchmarks Hpf_lang Hpf_mapping Hpf_spmd Init List Phpf_core Sys Tomcatv Trace_sim Variants
