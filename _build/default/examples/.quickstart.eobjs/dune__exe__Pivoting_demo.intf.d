examples/pivoting_demo.mli:
