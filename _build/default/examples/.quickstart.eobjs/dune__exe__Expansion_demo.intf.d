examples/expansion_demo.mli:
