examples/quickstart.mli:
