examples/control_flow_demo.mli:
