examples/pivoting_demo.ml: Array Compiler Decisions Dgefa Fmt Hpf_analysis Hpf_benchmarks Hpf_spmd Init List Phpf_core Reduction Reduction_map Spmd_interp Sys Trace_sim Variants
