examples/distribution_study.mli:
