(* Bechamel microbenchmarks of the compiler passes themselves (parse,
   SSA construction, privatization mapping, communication analysis,
   whole-pipeline compile), measured on the TOMCATV and DGEFA inputs. *)

open Bechamel
open Toolkit
open Hpf_lang
open Hpf_analysis
open Phpf_core
open Hpf_benchmarks

let tomcatv = lazy (Sema.check (Tomcatv.program ~n:66 ~niter:10 ~p:4))
let dgefa = lazy (Sema.check (Dgefa.program ~n:64 ~p:4))

let source =
  lazy (Pp.program_to_string (Lazy.force tomcatv))

let test_parse =
  Test.make ~name:"parse tomcatv"
    (Staged.stage (fun () ->
         ignore (Parser.parse_string (Lazy.force source))))

let test_ssa =
  Test.make ~name:"cfg+ssa tomcatv"
    (Staged.stage (fun () ->
         ignore (Ssa.build (Cfg.build (Lazy.force tomcatv)))))

let test_compile_tomcatv =
  Test.make ~name:"compile tomcatv"
    (Staged.stage (fun () ->
         ignore (Compiler.compile_exn (Lazy.force tomcatv))))

let test_compile_dgefa =
  Test.make ~name:"compile dgefa"
    (Staged.stage (fun () -> ignore (Compiler.compile_exn (Lazy.force dgefa))))

let test_mapping =
  Test.make ~name:"mapping pass tomcatv"
    (Staged.stage (fun () ->
         let d = Decisions.create (Lazy.force tomcatv) in
         Ctrl_priv.run d;
         Reduction_map.run d;
         Array_priv.run d;
         Mapping_alg.run d))

let small_tomcatv = lazy (Compiler.compile_exn (Tomcatv.program ~n:18 ~niter:2 ~p:4))

let test_trace_sim =
  Test.make ~name:"trace-sim tomcatv n=18"
    (Staged.stage (fun () ->
         let c = Lazy.force small_tomcatv in
         ignore
           (Hpf_spmd.Trace_sim.run
              ~init:(Hpf_spmd.Init.init c.Compiler.prog)
              c)))

let test_spmd_interp =
  Test.make ~name:"spmd-interp tomcatv n=18"
    (Staged.stage (fun () ->
         let c = Lazy.force small_tomcatv in
         ignore
           (Hpf_spmd.Spmd_interp.run
              ~init:(Hpf_spmd.Init.init c.Compiler.prog)
              c)))

let benchmark () =
  let tests =
    [
      test_parse;
      test_ssa;
      test_mapping;
      test_compile_tomcatv;
      test_compile_dgefa;
      test_trace_sim;
      test_spmd_interp;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true
          ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "  %-26s %12.1f ns/run@." name est
          | _ -> Fmt.pr "  %-26s (no estimate)@." name)
        results)
    tests

let run () =
  Fmt.pr "Compiler-pass microbenchmarks (Bechamel):@.";
  benchmark ()
