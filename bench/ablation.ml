(* Ablation benches for the design choices DESIGN.md calls out:

   1. consumer-over-producer preference with the inner-loop veto
      (already Table 1's columns; here shown per-communication);
   2. the cost model's placement awareness: with a zero-latency network
      the mapping choice stops mattering — evidence that the win comes
      from message counts, not flops;
   3. reduction-combine group sizing (paper §2.3). *)

open Hpf_comm
open Phpf_core
open Hpf_spmd
open Hpf_benchmarks

let time_with model prog options =
  let c = Compiler.compile_exn ~options prog in
  let r, _ = Trace_sim.run ~model ~init:(Init.init c.Compiler.prog) c in
  r.Trace_sim.time

(* Ablation 4: global message combining *)
let run_combining () =
  let p = 8 in
  let prog = Tomcatv.program ~n:66 ~niter:10 ~p in
  Fmt.pr
    "@.Ablation 4: TOMCATV (P=%d) — global message combining (the optimization@." p;
  Fmt.pr "the paper notes phpf lacked) applied to each mapping variant@.";
  List.iter
    (fun (name, options) ->
      let plain = time_with Cost_model.sp2 prog options in
      let combined =
        time_with Cost_model.sp2 prog
          (Variants.with_message_combining options)
      in
      Fmt.pr "  %-20s : %.4fs -> %.4fs with combining (%.1fx)@." name plain
        combined (plain /. combined))
    [
      ("producer", Variants.producer_alignment);
      ("selected", Variants.selected);
    ];
  Fmt.pr
    "  combining rescues some of the producer variant's latency, but the@.";
  Fmt.pr "  paper's mapping choice still dominates by a wide margin.@."

(* Ablation 5: privatization vs scalar expansion (paper section 6) *)
let run_expansion () =
  let prog = Fig_examples.fig1 ~n:100 ~p:8 () in
  Fmt.pr
    "@.Ablation 5: Fig. 1 (P=8) — privatization vs scalar expansion (paper section 6)@.";
  let run name c =
    let r, _ = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
    Fmt.pr "  %-16s time %.6fs   mem %5d elems/proc   comms %d@." name
      r.Trace_sim.time r.Trace_sim.mem_elems_max
      (List.length c.Compiler.comms);
    r
  in
  let priv = Compiler.compile_exn prog in
  let expanded, exps = Expansion.run prog in
  List.iter
    (fun e -> Fmt.pr "  expanding %a@." Expansion.pp_expansion e)
    exps;
  let exp = Compiler.compile_exn expanded in
  let rp = run "privatization" priv in
  let re = run "expansion" exp in
  Fmt.pr
    "  expansion reproduces the communication structure but pays %d extra@."
    (re.Trace_sim.mem_elems_max - rp.Trace_sim.mem_elems_max);
  Fmt.pr
    "  elements per processor — the storage the paper's approach avoids.@."

let run () =
  let p = 8 in
  let prog = Tomcatv.program ~n:66 ~niter:10 ~p in
  Fmt.pr "Ablation 1: TOMCATV (P=%d) — vectorizable vs inner-loop comms per variant@." p;
  List.iter
    (fun (name, options) ->
      let c = Compiler.compile_exn ~options prog in
      let inner =
        List.length
          (List.filter
             (fun (cm : Comm.t) ->
               cm.Comm.stmt_level > 0
               && cm.Comm.placement_level >= cm.Comm.stmt_level)
             c.Compiler.comms)
      in
      let vectorized =
        List.length (List.filter Comm.vectorized c.Compiler.comms)
      in
      Fmt.pr "  %-20s : %d comms (%d vectorized, %d inner-loop)@." name
        (List.length c.Compiler.comms)
        vectorized inner)
    [
      ("replication", Variants.replication);
      ("producer", Variants.producer_alignment);
      ("selected", Variants.selected);
    ];
  Fmt.pr "@.Ablation 2: TOMCATV (P=%d) — SP2 network vs idealized zero-latency network@." p;
  List.iter
    (fun (name, options) ->
      let sp2 = time_with Cost_model.sp2 prog options in
      let zero = time_with Cost_model.zero_latency prog options in
      Fmt.pr "  %-20s : sp2 %.4fs   zero-latency %.4fs   (network accounts for %.0f%%)@."
        name sp2 zero
        (100.0 *. (sp2 -. zero) /. sp2))
    [
      ("producer", Variants.producer_alignment);
      ("selected", Variants.selected);
    ];
  Fmt.pr "@.Ablation 3: DGEFA (P=%d) — reduction combine group@." p;
  let dg = Dgefa.program ~n:96 ~p in
  List.iter
    (fun (name, options) ->
      let c = Compiler.compile_exn ~options dg in
      let d = c.Compiler.decisions in
      List.iter
        (fun red ->
          Fmt.pr "  %-20s : combine group for %s = %d procs@." name
            red.Hpf_analysis.Reduction.var
            (Reduction_map.combine_group d red))
        d.Decisions.reductions)
    [
      ("default", Variants.no_reduction_alignment);
      ("aligned", Variants.selected);
    ];
  run_combining ();
  run_expansion ()

