(* Benchmark harness: regenerates the paper's Tables 1-3 on the machine
   simulator, and runs Bechamel microbenchmarks of the compiler passes.

   Usage:
     bench/main.exe                  -- all three tables, scaled sizes
     bench/main.exe table1|table2|table3 [--full]
     bench/main.exe micro            -- bechamel compiler-pass benches
     bench/main.exe ablation         -- design-choice ablations
     bench/main.exe --json [--out=F] -- machine-readable benchmark run
                                        (writes BENCH_phpf.json)
*)

open Hpf_benchmarks

let size_of_args args =
  if List.mem "--full" args then `Full
  else if List.mem "--medium" args then `Medium
  else `Scaled

(* optional --procs=1,4,16 filter *)
let procs_of_args ~default args =
  List.fold_left
    (fun acc a ->
      match String.index_opt a '=' with
      | Some i when String.sub a 0 i = "--procs" ->
          String.sub a (i + 1) (String.length a - i - 1)
          |> String.split_on_char ','
          |> List.map int_of_string
      | _ -> acc)
    default args

let run_table1 args =
  let procs = procs_of_args ~default:[ 1; 2; 4; 8; 16 ] args in
  let t = Tables.table1 ~size:(size_of_args args) ~procs () in
  Fmt.pr "%a@." Tables.pp_table t;
  (match
     ( Tables.ratio t ~procs:16 ~worse:"Replication"
         ~better:"Selected Alignment",
       Tables.ratio t ~procs:16 ~worse:"Producer Alignment"
         ~better:"Selected Alignment",
       Tables.speedup t ~column:"Selected Alignment" ~from_procs:1
         ~to_procs:16 )
   with
  | Some r, Some rp, Some s ->
      Fmt.pr
        "  paper: selected alignment wins by >= 2 orders of magnitude at P=16; only it yields speedups@.";
      Fmt.pr
        "  measured: replication/selected = %.1fx, producer/selected = %.1fx, selected speedup P1->P16 = %.2fx@."
        r rp s
  | _ -> ());
  Fmt.pr "@."

let run_table2 args =
  let procs = procs_of_args ~default:[ 1; 2; 4; 8; 16 ] args in
  let t = Tables.table2 ~size:(size_of_args args) ~procs () in
  Fmt.pr "%a@." Tables.pp_table t;
  (match
     ( Tables.ratio t ~procs:16 ~worse:"Default" ~better:"Alignment",
       Tables.ratio t ~procs:2 ~worse:"Default" ~better:"Alignment" )
   with
  | Some r16, Some r2 ->
      Fmt.pr
        "  paper: replicated reduction scalar costs a roughly constant overhead, a growing fraction as P rises@.";
      Fmt.pr "  measured: default/alignment = %.2fx at P=2, %.2fx at P=16@."
        r2 r16
  | _ -> ());
  Fmt.pr "@."

let run_table3 args =
  let procs = procs_of_args ~default:[ 2; 4; 8; 16 ] args in
  let t = Tables.table3 ~size:(size_of_args args) ~procs () in
  Fmt.pr "%a@." Tables.pp_table t;
  (match
     ( Tables.ratio t ~procs:4 ~worse:"1-D, No Array Priv."
         ~better:"1-D, Priv.",
       Tables.ratio t ~procs:4 ~worse:"2-D, No Partial Priv."
         ~better:"2-D, Partial Priv." )
   with
  | Some r1, Some r2 ->
      Fmt.pr
        "  paper: without (partial) privatization both distributions are far slower (1-D aborted after a day)@.";
      Fmt.pr
        "  measured at P=4: no-priv/priv = %.1fx (1-D), no-partial/partial = %.1fx (2-D)@."
        r1 r2
  | _ -> ());
  Fmt.pr "@."

(* --json: per benchmark, a processor-count sweep.  At every P the
   trace simulator prices the program (closed-form ownership keeps this
   cheap even at P=1024); at small P the full SPMD interpreter also runs
   in both aggregation modes and validates against the sequential
   reference — validation failures are hard errors, a benchmark that no
   longer matches the reference must not publish numbers. *)

let json_benchmarks =
  [
    ("fig1", fun ~p -> Fig_examples.fig1 ~n:64 ~p ());
    ("fig2", fun ~p -> Fig_examples.fig2 ~n:32 ~np:p ());
    ("fig7", fun ~p -> Fig_examples.fig7 ~n:48 ~p ());
    ("tomcatv", fun ~p -> Tomcatv.program ~n:66 ~niter:1 ~p);
    ("dgefa", fun ~p -> Dgefa.program ~n:64 ~p);
    ( "appsp_2d",
      fun ~p ->
        match Hpf_mapping.Grid.factorize ~rank:2 p with
        | [ p1; p2 ] -> Appsp.program_2d ~n:18 ~niter:1 ~p1 ~p2
        | _ -> assert false );
  ]

(* optional --bench=fig1,tomcatv filter *)
let bench_of_args args =
  List.fold_left
    (fun acc a ->
      match String.index_opt a '=' with
      | Some i when String.sub a 0 i = "--bench" ->
          Some
            (String.sub a (i + 1) (String.length a - i - 1)
            |> String.split_on_char ',')
      | _ -> acc)
    None args

let out_of_args ~default args =
  List.fold_left
    (fun acc a ->
      match String.index_opt a '=' with
      | Some i when String.sub a 0 i = "--out" ->
          String.sub a (i + 1) (String.length a - i - 1)
      | _ -> acc)
    default args

(* One sweep point: compile at P (optimizer on, the default), trace-
   simulate always; below the SPMD threshold also execute the full
   per-processor interpreter in both aggregation modes and validate
   against the sequential reference.  The same program is additionally
   compiled with the optimizer off (--no-opt, phpf's verbatim schedule)
   and priced/measured identically — the A/B leg behind the packet and
   byte win columns.  Both legs validating against the same sequential
   reference is the differential test: optimized and legacy schedules
   must compute bit-identical results. *)
type sweep_point = {
  p : int;
  r : Hpf_spmd.Trace_sim.result;
  spmd : (Hpf_spmd.Msg.stats * Hpf_spmd.Msg.stats) option;
      (** (aggregated, per-element) measured traffic, optimized *)
  wall_ms : float;
  lower_ms : float;
  ir_ops : Phpf_ir.Sir.op_counts;
  census : (string * (string * int) list) list;
      (** per sir-opt pass: its recorded counters (rewrites, deltas) *)
  base_r : Hpf_spmd.Trace_sim.result;  (** --no-opt trace-sim *)
  base_spmd : Hpf_spmd.Msg.stats option;
      (** --no-opt aggregated measured traffic *)
  base_ir_ops : Phpf_ir.Sir.op_counts;
}

(* SPMD execution materializes P shadow memories and O(P) mirror writes
   per statement instance: measured (and validated) only up to here. *)
let spmd_threshold = 8

let validated_run (name : string) (p : int) ~(tag : string) ~aggregate
    (c : Phpf_core.Compiler.compiled) : Hpf_spmd.Msg.stats =
  let open Phpf_core in
  let open Hpf_spmd in
  let st = Spmd_interp.run ~init:(Init.init c.Compiler.prog) ~aggregate c in
  (match Spmd_interp.validate st with
  | [] -> ()
  | m :: _ ->
      Fmt.epr "bench %s P=%d (%s, aggregate=%b): %a@." name p tag aggregate
        Spmd_interp.pp_mismatch m;
      exit 1);
  Spmd_interp.comm_stats st

let sweep_point (name : string) (mk : p:int -> Hpf_lang.Ast.program)
    (p : int) : sweep_point =
  let open Phpf_core in
  let open Hpf_spmd in
  let wall0 = Unix.gettimeofday () in
  let c, trace =
    match Compiler.compile_traced (mk ~p) with
    | Ok res -> res
    | Error ds ->
        Fmt.epr "bench %s (P=%d): %a@." name p Hpf_lang.Diag.pp_list ds;
        exit 1
  in
  let lower_ms = Phpf_driver.Pipeline.pass_time_ms trace "lower-spmd" in
  let ir_ops =
    match c.Compiler.sir with
    | Some sir -> Phpf_ir.Sir.op_counts sir
    | None ->
        Fmt.epr "bench %s: compiler recorded no lowered program@." name;
        exit 1
  in
  let census =
    List.filter_map
      (fun pass ->
        let pass = "sir-opt." ^ pass in
        Option.map
          (fun stats -> (pass, stats))
          (Phpf_driver.Pipeline.stats_of trace pass))
      Phpf_ir.Sir_opt.pass_names
  in
  (* the --no-opt leg: phpf's verbatim schedule *)
  let base_options =
    { Decisions.default_options with Decisions.optimize = false }
  in
  let cb = Compiler.compile_exn ~options:base_options (mk ~p) in
  let base_ir_ops =
    match cb.Compiler.sir with
    | Some sir -> Phpf_ir.Sir.op_counts sir
    | None ->
        Fmt.epr "bench %s: --no-opt leg recorded no lowered program@." name;
        exit 1
  in
  let spmd, base_spmd =
    if p > spmd_threshold then (None, None)
    else
      ( Some
          ( validated_run name p ~tag:"opt" ~aggregate:true c,
            validated_run name p ~tag:"opt" ~aggregate:false c ),
        Some (validated_run name p ~tag:"no-opt" ~aggregate:true cb) )
  in
  let r, _ =
    Trace_sim.run
      ~init:(Init.init c.Compiler.prog)
      ?comm_stats:(Option.map fst spmd) ?sir:c.Compiler.sir c
  in
  let base_r, _ =
    Trace_sim.run
      ~init:(Init.init cb.Compiler.prog)
      ?comm_stats:base_spmd ?sir:cb.Compiler.sir cb
  in
  let wall_ms = (Unix.gettimeofday () -. wall0) *. 1000.0 in
  {
    p;
    r;
    spmd;
    wall_ms;
    lower_ms;
    ir_ops;
    census;
    base_r;
    base_spmd;
    base_ir_ops;
  }

(* The mapping-aware recovery scenario (one crash pinned to the first
   heartbeat window of TOMCATV).  Measured leg: the SPMD executor at
   P=64 repairs the crash through the compile-time plan — localized
   failover only, zero full restores — and still validates bit-for-bit.
   Analytic leg: at P=1024 the trace simulator prices the fault-free run
   and {!Sir_recovery.estimate_failover} prices the worst-interval
   failover from the plan alone, all in well under a second. *)
type recovery_bench = {
  measured_p : int;
  report : Hpf_spmd.Recover.report;
  measured_wall_ms : float;
  analytic_p : int;
  analytic : Phpf_ir.Sir_recovery.estimate;
  simulated_time : float;
  analytic_wall_ms : float;
}

let recovery_bench () : recovery_bench =
  let open Phpf_core in
  let open Hpf_spmd in
  let measured_p = 64 and analytic_p = 1024 in
  let wall0 = Unix.gettimeofday () in
  let c = Compiler.compile_exn (Tomcatv.program ~n:66 ~niter:1 ~p:measured_p) in
  let faults = Fault.make ~seed:1 ~oneshots:[ (Fault.Crash, 0) ] [] in
  let st =
    Spmd_interp.run ~init:(Init.init c.Compiler.prog) ~faults
      ?sir:c.Compiler.sir c
  in
  (match Spmd_interp.validate st with
  | [] -> ()
  | m :: _ ->
      Fmt.epr "bench recovery (P=%d): %a@." measured_p Spmd_interp.pp_mismatch
        m;
      exit 1);
  let report = Spmd_interp.fault_report st in
  if report.Recover.restores > 0 then begin
    Fmt.epr "bench recovery: crash fell back to a full restore@.";
    exit 1
  end;
  if report.Recover.plan_refetch + report.Recover.plan_reexec = 0 then begin
    Fmt.epr "bench recovery: plan never fired@.";
    exit 1
  end;
  let measured_wall_ms = (Unix.gettimeofday () -. wall0) *. 1000.0 in
  let wall1 = Unix.gettimeofday () in
  let c2 =
    Compiler.compile_exn (Tomcatv.program ~n:66 ~niter:1 ~p:analytic_p)
  in
  let r, _ =
    Trace_sim.run ~init:(Init.init c2.Compiler.prog) ?sir:c2.Compiler.sir c2
  in
  let sir, plan =
    match c2.Compiler.sir with
    | Some sir -> (
        match sir.Phpf_ir.Sir.recovery with
        | Some plan -> (sir, plan)
        | None ->
            Fmt.epr "bench recovery: no recovery plan recorded@.";
            exit 1)
    | None ->
        Fmt.epr "bench recovery: no lowered program recorded@.";
        exit 1
  in
  let analytic =
    Phpf_ir.Sir_recovery.estimate_failover
      ~heartbeat_timeout:Recover.default_config.Recover.heartbeat_timeout sir
      plan
  in
  let analytic_wall_ms = (Unix.gettimeofday () -. wall1) *. 1000.0 in
  {
    measured_p;
    report;
    measured_wall_ms;
    analytic_p;
    analytic;
    simulated_time = r.Trace_sim.time;
    analytic_wall_ms;
  }

(* The serve bench: replay >= 1000 generated requests (programs x
   option sets x actions) through the phpfc-serve engine on 1, 2 and 8
   domains — fresh engine and cache per leg.  The result digests of all
   legs must agree (the determinism gate: a mismatch is always fatal);
   the throughput ratio is reported honestly, and the >= 2x scaling
   expectation is enforced only where the host can physically deliver
   it (recommended_domain_count >= 2) and --check-serve asks for it. *)
module Srv = Phpf_serve.Serve

type serve_bench = {
  serve_requests : int;
  distinct_points : int;
  legs : (int * Srv.replay_summary) list;
  deterministic : bool;
  ratio_8_vs_1 : float;
  recommended_domains : int;
}

let serve_bench ~(requests : int) : serve_bench =
  let programs =
    List.map
      (fun (name, mk) -> (name, Hpf_lang.Pp.program_to_string (mk ~p:4)))
      json_benchmarks
  in
  let reqs = Srv.workload ~programs ~n:requests in
  let distinct_points =
    List.sort_uniq compare (List.map Phpf_serve.Engine.cache_key reqs)
    |> List.length
  in
  let legs = List.map (fun d -> (d, Srv.replay ~domains:d reqs)) [ 1; 2; 8 ] in
  List.iter
    (fun ((d, s) : int * Srv.replay_summary) ->
      if s.Srv.errors > 0 then begin
        Fmt.epr "bench serve: %d error response(s) at %d domain(s)@."
          s.Srv.errors d;
        exit 1
      end)
    legs;
  let digests =
    List.sort_uniq compare (List.map (fun (_, s) -> s.Srv.digest) legs)
  in
  let throughput d = (List.assoc d legs).Srv.throughput_rps in
  {
    serve_requests = requests;
    distinct_points;
    legs;
    deterministic = List.length digests = 1;
    ratio_8_vs_1 =
      (if throughput 1 > 0.0 then throughput 8 /. throughput 1 else 0.0);
    recommended_domains = Domain.recommended_domain_count ();
  }

let run_json args =
  let open Hpf_spmd in
  let path = out_of_args ~default:"BENCH_phpf.json" args in
  let procs = procs_of_args ~default:[ 8; 64; 256; 1024 ] args in
  let selected =
    match bench_of_args args with
    | None -> json_benchmarks
    | Some names ->
        List.filter (fun (n, _) -> List.mem n names) json_benchmarks
  in
  if selected = [] then begin
    Fmt.epr "bench: --bench matched no benchmark@.";
    exit 2
  end;
  let entries =
    List.map
      (fun (name, mk) -> (name, List.map (sweep_point name mk) procs))
      selected
  in
  let recov = recovery_bench () in
  (* --no-serve skips the replay legs (the wall-clock-budgeted `scale`
     CI job); everything else runs them and enforces determinism. *)
  let srv =
    if List.mem "--no-serve" args then None
    else begin
      let s = serve_bench ~requests:1000 in
      if not s.deterministic then begin
        Fmt.epr
          "bench serve: NONDETERMINISM — replay digests differ across \
           domain counts@.";
        List.iter
          (fun (d, (l : Srv.replay_summary)) ->
            Fmt.epr "bench serve: domains=%d digest=%s@." d l.Srv.digest)
          s.legs;
        exit 1
      end;
      Some s
    end
  in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\n";
  pf "  \"schema\": \"phpf-bench/6\",\n";
  pf "  \"procs\": [%s],\n"
    (String.concat ", " (List.map string_of_int procs));
  pf "  \"spmd_threshold\": %d,\n" spmd_threshold;
  pf "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, points) ->
      let first = List.hd points in
      let ir_ops = first.ir_ops in
      let base = first.base_ir_ops in
      pf "    {\n";
      pf "      \"name\": %S,\n" name;
      pf "      \"ir_assigns\": %d,\n" ir_ops.Phpf_ir.Sir.assigns;
      pf "      \"ir_elem_xfers\": %d,\n" ir_ops.Phpf_ir.Sir.elem_xfers;
      pf "      \"ir_whole_xfers\": %d,\n" ir_ops.Phpf_ir.Sir.whole_xfers;
      pf "      \"ir_block_xfers\": %d,\n" ir_ops.Phpf_ir.Sir.block_xfers;
      pf "      \"ir_reduce_ops\": %d,\n" ir_ops.Phpf_ir.Sir.reduce_ops;
      pf "      \"ir_allocs\": %d,\n" ir_ops.Phpf_ir.Sir.alloc_ops;
      pf "      \"ir_elem_xfers_no_opt\": %d,\n" base.Phpf_ir.Sir.elem_xfers;
      pf "      \"ir_whole_xfers_no_opt\": %d,\n" base.Phpf_ir.Sir.whole_xfers;
      pf "      \"ir_block_xfers_no_opt\": %d,\n" base.Phpf_ir.Sir.block_xfers;
      pf "      \"ir_reduce_ops_no_opt\": %d,\n" base.Phpf_ir.Sir.reduce_ops;
      pf "      \"opt_census\": [\n";
      List.iteri
        (fun k (pass, stats) ->
          let get key =
            match List.assoc_opt key stats with Some v -> v | None -> 0
          in
          pf
            "        {\"pass\": %S, \"rewrites\": %d, \"delta_elem_xfers\": \
             %d, \"delta_whole_xfers\": %d, \"delta_block_xfers\": %d, \
             \"delta_reduce_ops\": %d}%s\n"
            pass (get "rewrites")
            (get "delta.elem-xfers")
            (get "delta.whole-xfers")
            (get "delta.block-xfers")
            (get "delta.reduce-ops")
            (if k = List.length first.census - 1 then "" else ","))
        first.census;
      pf "      ],\n";
      pf "      \"sweep\": [\n";
      List.iteri
        (fun j (pt : sweep_point) ->
          let r = pt.r in
          pf "        {\n";
          pf "          \"nprocs\": %d,\n" r.Trace_sim.nprocs;
          pf "          \"simulated_time\": %.6f,\n" r.Trace_sim.time;
          pf "          \"compute_max\": %.6f,\n" r.Trace_sim.compute_max;
          pf "          \"comm_time\": %.6f,\n" r.Trace_sim.comm_time;
          pf "          \"comm_messages\": %d,\n" r.Trace_sim.comm_messages;
          pf "          \"packets\": %d,\n" r.Trace_sim.packets;
          pf "          \"bytes\": %d,\n" r.Trace_sim.bytes;
          pf "          \"mem_elems_max\": %d,\n" r.Trace_sim.mem_elems_max;
          pf "          \"simulated_time_no_opt\": %.6f,\n"
            pt.base_r.Trace_sim.time;
          pf "          \"comm_messages_no_opt\": %d,\n"
            pt.base_r.Trace_sim.comm_messages;
          pf "          \"packets_no_opt\": %d,\n" pt.base_r.Trace_sim.packets;
          pf "          \"bytes_no_opt\": %d,\n" pt.base_r.Trace_sim.bytes;
          pf "          \"spmd_measured\": %b,\n" (pt.spmd <> None);
          (match pt.spmd with
          | Some ((agg : Msg.stats), (one : Msg.stats)) ->
              let ratio =
                if agg.Msg.packets = 0 then 1.0
                else
                  float_of_int one.Msg.packets
                  /. float_of_int agg.Msg.packets
              in
              pf "          \"elems\": %d,\n" agg.Msg.elems;
              pf "          \"blocks\": %d,\n" agg.Msg.blocks;
              pf "          \"spmd_packets\": %d,\n" agg.Msg.packets;
              pf "          \"spmd_bytes\": %d,\n" agg.Msg.bytes;
              pf "          \"packets_no_aggregate\": %d,\n" one.Msg.packets;
              pf "          \"bytes_no_aggregate\": %d,\n" one.Msg.bytes;
              pf "          \"packet_reduction\": %.2f,\n" ratio
          | None -> ());
          (match pt.base_spmd with
          | Some (bagg : Msg.stats) ->
              pf "          \"spmd_packets_no_opt\": %d,\n" bagg.Msg.packets;
              pf "          \"spmd_bytes_no_opt\": %d,\n" bagg.Msg.bytes
          | None -> ());
          pf "          \"lower_ms\": %.3f,\n" pt.lower_ms;
          pf "          \"wall_ms\": %.2f\n" pt.wall_ms;
          pf "        }%s\n" (if j = List.length points - 1 then "" else ",")
        )
        points;
      pf "      ]\n";
      pf "    }%s\n" (if i = List.length entries - 1 then "" else ",")
    )
    entries;
  pf "  ],\n";
  let rr = recov.report in
  let est = recov.analytic in
  pf "  \"recovery\": {\n";
  pf "    \"scenario\": \"tomcatv n=66, one crash at heartbeat window 0, plan regime\",\n";
  pf "    \"measured\": {\n";
  pf "      \"nprocs\": %d,\n" recov.measured_p;
  pf "      \"crashes\": %d,\n" rr.Recover.crashes;
  pf "      \"suspects\": %d,\n" rr.Recover.suspects;
  pf "      \"plan_refetch\": %d,\n" rr.Recover.plan_refetch;
  pf "      \"plan_reexec\": %d,\n" rr.Recover.plan_reexec;
  pf "      \"restores\": %d,\n" rr.Recover.restores;
  pf "      \"escalations\": %d,\n" rr.Recover.escalations;
  pf "      \"recovery_time\": %.6f,\n" rr.Recover.recovery_time;
  pf "      \"wall_ms\": %.2f\n" recov.measured_wall_ms;
  pf "    },\n";
  pf "    \"analytic\": {\n";
  pf "      \"nprocs\": %d,\n" recov.analytic_p;
  pf "      \"replica_refetches\": %d,\n"
    est.Phpf_ir.Sir_recovery.replica_refetches;
  pf "      \"region_replays\": %d,\n" est.Phpf_ir.Sir_recovery.region_replays;
  pf "      \"checkpoint_restores\": %d,\n"
    est.Phpf_ir.Sir_recovery.checkpoint_restores;
  pf "      \"detect_time\": %.6f,\n" est.Phpf_ir.Sir_recovery.detect_time;
  pf "      \"failover_time\": %.6f,\n"
    (Phpf_ir.Sir_recovery.total_time est);
  pf "      \"simulated_time\": %.6f,\n" recov.simulated_time;
  pf "      \"wall_ms\": %.2f\n" recov.analytic_wall_ms;
  pf "    }\n";
  pf "  },\n";
  (match srv with
  | None -> pf "  \"serve\": null\n"
  | Some srv ->
      pf "  \"serve\": {\n";
      pf "    \"requests\": %d,\n" srv.serve_requests;
      pf "    \"distinct_points\": %d,\n" srv.distinct_points;
      pf "    \"recommended_domains\": %d,\n" srv.recommended_domains;
      pf "    \"deterministic\": %b,\n" srv.deterministic;
      pf "    \"digest\": %S,\n" (snd (List.hd srv.legs)).Srv.digest;
      pf "    \"throughput_ratio_8_vs_1\": %.3f,\n" srv.ratio_8_vs_1;
      pf "    \"legs\": [\n";
      List.iteri
        (fun i (d, (s : Srv.replay_summary)) ->
          let c = s.Srv.cache in
          pf
            "      {\"domains\": %d, \"ok\": %d, \"errors\": %d, \
             \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f, \
             \"wall_s\": %.3f, \"throughput_rps\": %.1f, \"cache_hits\": \
             %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f, \
             \"computed\": %d}%s\n"
            d s.Srv.ok s.Srv.errors s.Srv.p50_ms s.Srv.p99_ms s.Srv.mean_ms
            s.Srv.wall_s s.Srv.throughput_rps c.Phpf_driver.Memo.hits
            c.Phpf_driver.Memo.misses s.Srv.cache_hit_rate s.Srv.computed
            (if i = List.length srv.legs - 1 then "" else ","))
        srv.legs;
      pf "    ]\n";
      pf "  }\n");
  pf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s (%d benchmarks x %d procs)@." path (List.length entries)
    (List.length procs);
  (* the optimizer gate: the optimized schedule must never ship more
     than phpf's verbatim one — in the analytic pricing at every P, and
     in the measured SPMD traffic where it runs.  --check-opt makes a
     violation fatal (the CI `opt` job). *)
  let violations = ref 0 in
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (pt : sweep_point) ->
          let bad fmt =
            Fmt.kstr
              (fun msg ->
                incr violations;
                Fmt.epr "bench: OPT REGRESSION %s P=%d: %s@." name pt.p msg)
              fmt
          in
          if pt.r.Trace_sim.packets > pt.base_r.Trace_sim.packets then
            bad "priced packets %d > %d (--no-opt)" pt.r.Trace_sim.packets
              pt.base_r.Trace_sim.packets;
          if pt.r.Trace_sim.bytes > pt.base_r.Trace_sim.bytes then
            bad "priced bytes %d > %d (--no-opt)" pt.r.Trace_sim.bytes
              pt.base_r.Trace_sim.bytes;
          match (pt.spmd, pt.base_spmd) with
          | Some ((agg, _) : Msg.stats * Msg.stats), Some bagg ->
              if agg.Msg.packets > bagg.Msg.packets then
                bad "measured packets %d > %d (--no-opt)" agg.Msg.packets
                  bagg.Msg.packets;
              if agg.Msg.bytes > bagg.Msg.bytes then
                bad "measured bytes %d > %d (--no-opt)" agg.Msg.bytes
                  bagg.Msg.bytes
          | _ -> ())
        points)
    entries;
  if !violations > 0 then begin
    Fmt.epr "bench: %d optimizer regression(s)@." !violations;
    if List.mem "--check-opt" args then exit 1
  end
  else if List.mem "--check-opt" args then
    Fmt.pr "check-opt: optimized traffic <= --no-opt on every point@.";
  (* the serve gate: determinism is already fatal above; the >= 2x
     domain-scaling expectation only binds where the host has cores to
     scale onto — a 1-core container reports the honest ratio without
     failing. *)
  match (srv, List.mem "--check-serve" args) with
  | None, true ->
      Fmt.epr "bench: --check-serve is incompatible with --no-serve@.";
      exit 2
  | Some srv, true ->
      if srv.recommended_domains >= 2 && srv.ratio_8_vs_1 < 2.0 then begin
        Fmt.epr
          "bench serve: throughput ratio %.2f < 2.0 at 8 vs 1 domains on a \
           host with %d recommended domains@."
          srv.ratio_8_vs_1 srv.recommended_domains;
        exit 1
      end
      else
        Fmt.pr
          "check-serve: deterministic across 1/2/8 domains, throughput \
           ratio %.2f (host recommends %d domains)@."
          srv.ratio_8_vs_1 srv.recommended_domains
  | _, false -> ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--json" args then run_json args
  else
  let which =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  match which with
  | [] ->
      run_table1 args;
      run_table2 args;
      run_table3 args
  | [ "table1" ] -> run_table1 args
  | [ "table2" ] -> run_table2 args
  | [ "table3" ] -> run_table3 args
  | [ "micro" ] -> Micro.run ()
  | [ "ablation" ] -> Ablation.run ()
  | _ ->
      prerr_endline
        "usage: main.exe [table1|table2|table3|micro|ablation] [--full|--medium] [--procs=8,64,256,1024] [--json [--out=FILE] [--bench=NAME,..]]";
      exit 2
