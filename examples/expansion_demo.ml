(* Scalar expansion vs privatization (paper §6): expand the aligned
   temporaries of Fig. 1 into iteration-indexed arrays and compare the
   two programs' schedules, times and memory.

     dune exec examples/expansion_demo.exe
*)

open Hpf_lang
open Phpf_core
open Hpf_spmd
open Hpf_benchmarks

let () =
  let prog = Fig_examples.fig1 ~n:100 ~p:4 () in
  let expanded, exps = Expansion.run prog in
  Fmt.pr "=== expansions ===@.";
  List.iter (fun e -> Fmt.pr "  %a@." Expansion.pp_expansion e) exps;
  Fmt.pr "@.=== expanded program ===@.%s@."
    (Pp.program_to_string (Sema.check expanded));
  let report name p =
    let c = Compiler.compile_exn p in
    let r, _ = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
    Fmt.pr "--- %s ---@." name;
    Fmt.pr "%a@." Report.pp_compiled c;
    Fmt.pr "simulated: %a@.@." Trace_sim.pp_result r;
    r
  in
  let rp = report "privatization" prog in
  let re = report "expansion" (Sema.check expanded) in
  Fmt.pr
    "Equal communication structure; expansion stores %d extra elements per@."
    (re.Trace_sim.mem_elems_max - rp.Trace_sim.mem_elems_max);
  Fmt.pr
    "processor — privatization achieves the same parallelism with private@.";
  Fmt.pr "scalars (the paper's point in section 6).@.";
  (* correctness of the transformed program *)
  let c = Compiler.compile_exn (Sema.check expanded) in
  let st = Spmd_interp.run ~init:(Init.init c.Compiler.prog) c in
  match Spmd_interp.validate st with
  | [] -> Fmt.pr "SPMD validation of the expanded program: OK@."
  | m :: _ ->
      Fmt.pr "MISMATCH %a@." Spmd_interp.pp_mismatch m;
      exit 1
