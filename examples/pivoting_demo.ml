(* DGEFA partial-pivoting demo (paper §2.3, Table 2): the maxloc
   reduction scalars of Gaussian elimination are aligned with the pivot
   column instead of being replicated, confining the pivot search to one
   processor and eliminating the per-step column broadcast.

     dune exec examples/pivoting_demo.exe [-- P]
*)

open Hpf_analysis
open Phpf_core
open Hpf_spmd
open Hpf_benchmarks

let procs () =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8

let () =
  let n = 96 and p = procs () in
  let prog = Dgefa.program ~n ~p in
  Fmt.pr "DGEFA Gaussian elimination, n = %d, P = %d, (*,cyclic) columns@.@."
    n p;

  let c = Compiler.compile_exn prog in
  let d = c.Compiler.decisions in
  (* the recognized reduction *)
  List.iter
    (fun (red : Reduction.red) ->
      Fmt.pr "recognized %s%a reduction on '%s'%s over loop s%d@."
        (if red.Reduction.conditional then "conditional " else "")
        Reduction.pp_red_op red.Reduction.op red.Reduction.var
        (match red.Reduction.loc_vars with
        | [] -> ""
        | ls -> Fmt.str " with location %a" Fmt.(list string) (List.map fst ls))
        red.Reduction.loop_sid;
      Fmt.pr "combine collective spans %d processor(s)@."
        (Reduction_map.combine_group d red))
    d.Decisions.reductions;
  Fmt.pr "@.";

  let run name options =
    let c = Compiler.compile_exn ~options prog in
    let r, _ = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
    Fmt.pr "  %-28s %a@." name Trace_sim.pp_result r;
    r.Trace_sim.time
  in
  Fmt.pr "simulated execution:@.";
  let def = run "default (replicated t, l):" Variants.no_reduction_alignment in
  let ali = run "reduction alignment:" Variants.selected in
  Fmt.pr "@.alignment saves %.1f%% — the overhead of the replicated pivot search@."
    (100.0 *. (def -. ali) /. def);

  let st = Spmd_interp.run ~init:(Init.init c.Compiler.prog) c in
  match Spmd_interp.validate st with
  | [] -> Fmt.pr "SPMD validation: OK@."
  | ms ->
      List.iter (fun m -> Fmt.pr "MISMATCH %a@." Spmd_interp.pp_mismatch m) ms;
      exit 1
