(* Distribution study: why DGEFA distributes columns CYCLICally.

   Gaussian elimination works on a shrinking trailing submatrix: under a
   BLOCK column distribution the processors owning leading columns go
   idle, while CYCLIC keeps the active columns spread across the whole
   machine.  The simulator's per-processor clocks expose the imbalance.

     dune exec examples/distribution_study.exe [-- P]
*)

open Hpf_lang
open Phpf_core
open Hpf_spmd

let procs () =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8

(* DGEFA with a configurable column distribution *)
let dgefa_with ~(fmt : Ast.dist_format) ~(n : int) ~(p : int) : Ast.program =
  let base = Hpf_benchmarks.Dgefa.program ~n ~p in
  let directives =
    List.map
      (function
        | Ast.Distribute { array = "a"; onto; _ } ->
            Ast.Distribute { array = "a"; fmts = [ Ast.Star; fmt ]; onto }
        | d -> d)
      base.Ast.directives
  in
  { base with Ast.directives }

let () =
  let n = 96 and p = procs () in
  Fmt.pr "DGEFA n = %d on %d processors: column distribution formats@.@." n p;
  Fmt.pr "%-12s %12s %14s %14s %12s@." "format" "time (s)" "compute max"
    "compute total" "imbalance";
  List.iter
    (fun (name, fmt) ->
      let prog = dgefa_with ~fmt ~n ~p in
      let c = Compiler.compile_exn prog in
      let r, _ = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
      let ideal =
        r.Trace_sim.compute_total /. float_of_int r.Trace_sim.nprocs
      in
      Fmt.pr "%-12s %12.4f %14.4f %14.4f %11.2fx@." name r.Trace_sim.time
        r.Trace_sim.compute_max r.Trace_sim.compute_total
        (r.Trace_sim.compute_max /. ideal))
    [
      ("block", Ast.Block);
      ("cyclic", Ast.Cyclic);
      ("cyclic(4)", Ast.Block_cyclic 4);
    ];
  Fmt.pr
    "@.BLOCK leaves the owners of leading columns idle once eliminated;@.";
  Fmt.pr
    "CYCLIC keeps every processor busy on the shrinking trailing matrix —@.";
  Fmt.pr "which is why the paper (and LINPACK practice) uses it.@."
