(* Control-flow privatization demo (paper §4, Fig. 7): an IF whose
   control transfers stay inside the loop body can be executed by just
   the processors that own the data, eliminating the broadcast of its
   predicate; an IF containing an EXIT cannot.

     dune exec examples/control_flow_demo.exe
*)

open Hpf_lang
open Phpf_core
open Hpf_spmd
open Hpf_benchmarks

let report name prog =
  let c = Compiler.compile_exn prog in
  let d = c.Compiler.decisions in
  Fmt.pr "--- %s ---@." name;
  Ast.iter_program
    (fun s ->
      match s.node with
      | Ast.If _ ->
          Fmt.pr "  if s%-2d : %s@." s.sid
            (if Decisions.ctrl_privatized d s.sid then
               "privatized (owner executes)"
             else "executed by all processors")
      | _ -> ())
    c.Compiler.prog;
  let bcasts =
    List.filter
      (fun (cm : Hpf_comm.Comm.t) ->
        cm.Hpf_comm.Comm.kind = Hpf_comm.Comm.Broadcast)
      c.Compiler.comms
  in
  Fmt.pr "  predicate broadcasts: %d (total comms: %d)@."
    (List.length bcasts)
    (List.length c.Compiler.comms);
  let st = Spmd_interp.run ~init:(Init.init c.Compiler.prog) c in
  (match Spmd_interp.validate st with
  | [] -> Fmt.pr "  SPMD validation: OK@.@."
  | ms ->
      List.iter (fun m -> Fmt.pr "  MISMATCH %a@." Spmd_interp.pp_mismatch m) ms;
      exit 1);
  c

let () =
  Fmt.pr "Privatized execution of control flow (paper Fig. 7)@.@.";
  (* the paper's program: both IFs transfer control only within the loop *)
  let _ = report "fig7: cycle stays inside the loop body" (Fig_examples.fig7 ()) in
  (* variant with an EXIT: control can leave the loop *)
  let exit_variant =
    let open Builder in
    let i = var "i" in
    program "fig7exit" ~params:[ ("n", 64) ]
      ~decls:
        [
          real_arr "a" [ 1 -- 64 ];
          real_arr "b" [ 1 -- 64 ];
          real_arr "c" [ 1 -- 64 ];
        ]
      ~directives:
        [
          processors "p" [ 4 ];
          distribute "a" [ block ];
          align_identity "b" "a" 1;
          align_identity "c" "a" 1;
        ]
      [
        do_ "i" (int 1) (var "n")
          [
            if_
              (("b" $. [ i ]) <> rlit 0.0)
              [
                ("a" $. [ i ]) <-- ("a" $. [ i ]) / ("b" $. [ i ]);
                if_then (("b" $. [ i ]) < rlit 0.0) [ exit_ () ];
              ]
              [ ("a" $. [ i ]) <-- ("c" $. [ i ]) ];
          ];
      ]
  in
  let _ =
    report "variant: the inner goto leaves the loop (EXIT)" exit_variant
  in
  Fmt.pr
    "The EXIT forces replicated execution of the enclosing IF and a broadcast@.";
  Fmt.pr "of its predicate; the paper's CYCLE form needs no communication at all.@."
