(* Partial privatization demo (paper §3.2, Fig. 6): the APPSP work array
   [c] is privatizable with respect to the k loop but not the j loop.
   Under a 2-D distribution, full privatization fails the AlignLevel
   check, and only the combination of partitioning (over j) and
   privatization (over k) exposes both levels of parallelism.

     dune exec examples/partial_priv_demo.exe
*)

open Hpf_lang
open Hpf_analysis
open Hpf_mapping
open Phpf_core
open Hpf_spmd
open Hpf_benchmarks

let () =
  let n = 18 and niter = 2 in
  let prog = Appsp.program_2d ~n ~niter ~p1:2 ~p2:2 in
  Fmt.pr "APPSP sweep kernel, n = %d, 2x2 processor grid@.@." n;
  Fmt.pr "%s@." (Pp.program_to_string (Sema.check prog));

  (* the AlignLevel computation that drives the decision *)
  let c = Compiler.compile_exn prog in
  let d = c.Compiler.decisions in
  let env = d.Decisions.env and nest = d.Decisions.nest in
  let rsd_ref =
    let sid = ref 0 in
    Ast.iter_program
      (fun s ->
        match s.node with
        | Ast.Assign (Ast.LArr ("rsd", _), _) when !sid = 0 -> sid := s.sid
        | _ -> ())
      c.Compiler.prog;
    { Aref.sid = !sid; base = "rsd";
      subs = [ Ast.Var "i"; Ast.Var "j"; Ast.Var "k" ] }
  in
  Fmt.pr "target reference rsd(i,j,k):@.";
  Fmt.pr "  AlignLevel over all grid dims      = %d@."
    (Align_level.align_level env nest rsd_ref);
  Fmt.pr "  AlignLevel restricted to k's dim   = %d@."
    (Align_level.align_level ~grid_dims:[ 1 ] env nest rsd_ref);
  Fmt.pr "  privatization level of the k loop  = 2@.";
  Fmt.pr "  => full privatization invalid, partial privatization valid@.@.";

  Fmt.pr "decision taken by the compiler:@.";
  List.iter
    (fun ((a, loop_sid), m) ->
      Fmt.pr "  %s w.r.t. loop s%d: %a@." a loop_sid
        Decisions.pp_array_mapping m)
    (Decisions.array_mappings d);
  Fmt.pr "@.";

  (* compare against disabling partial privatization *)
  let time options =
    let c = Compiler.compile_exn ~options prog in
    let r, _ = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
    r.Trace_sim.time
  in
  let with_partial = time Variants.selected in
  let without = time Variants.no_partial_priv in
  Fmt.pr "simulated time with partial privatization:    %.4fs@." with_partial;
  Fmt.pr "simulated time without (c replicated over k): %.4fs@." without;
  Fmt.pr "partial privatization speedup: %.1fx@." (without /. with_partial);

  (* and the correctness cross-check *)
  let st = Spmd_interp.run ~init:(Init.init c.Compiler.prog) c in
  match Spmd_interp.validate st with
  | [] -> Fmt.pr "SPMD validation: OK@."
  | ms ->
      List.iter (fun m -> Fmt.pr "MISMATCH %a@." Spmd_interp.pp_mismatch m) ms;
      exit 1
