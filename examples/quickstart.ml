(* Quickstart: parse an HPF kernel program, compile it, inspect the
   privatization decisions and communication schedule, check the SPMD
   execution against the sequential reference, and time it on the
   SP2-like simulator.

     dune exec examples/quickstart.exe
*)

open Hpf_lang
open Phpf_core
open Hpf_spmd

(* The paper's Fig. 1 in textual form.  Programs can equally be built
   with the combinator DSL (see the other examples). *)
let source =
  {|
program fig1
parameter n = 100
real a(100), b(100), c(100), d(100), e(100), f(100)
real x, y, z
integer m
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
m = 2
do i = 2, n - 1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i + 1) = y / z
  d(m) = x / z
end do
end program
|}

let () =
  (* 1. front end *)
  let prog = Sema.check (Parser.parse_string source) in
  Fmt.pr "=== program ===@.%s@." (Pp.program_to_string prog);

  (* 2. compile: induction variables, SSA, privatized-variable mapping
        (paper Fig. 3), reduction/array/control-flow privatization,
        communication analysis with message vectorization *)
  let compiled = Compiler.compile_exn prog in
  Fmt.pr "=== mapping decisions and communication schedule ===@.";
  Fmt.pr "%a@." Report.pp_compiled compiled;

  (* 3. correctness: per-processor execution with the compiler's
        communication schedule must match the sequential reference *)
  let st = Spmd_interp.run ~init:(Init.init compiled.Compiler.prog) compiled in
  (match Spmd_interp.validate st with
  | [] ->
      Fmt.pr "SPMD validation: OK (%d boundary element transfers)@.@."
        st.Spmd_interp.transfers
  | ms ->
      List.iter
        (fun m -> Fmt.pr "SPMD mismatch: %a@." Spmd_interp.pp_mismatch m)
        ms;
      exit 1);

  (* 4. performance: trace-driven timing on SP2-era network constants *)
  let result, _ =
    Trace_sim.run ~init:(Init.init compiled.Compiler.prog) compiled
  in
  Fmt.pr "simulated execution: %a@." Trace_sim.pp_result result;

  (* 5. what replication of the scalars would have cost instead *)
  let naive =
    Compiler.compile_exn
      ~options:
        { Decisions.default_options with Decisions.privatize_scalars = false }
      prog
  in
  let naive_result, _ =
    Trace_sim.run ~init:(Init.init naive.Compiler.prog) naive
  in
  Fmt.pr "with replicated scalars:  %a@." Trace_sim.pp_result naive_result;
  Fmt.pr "privatization speedup: %.1fx@."
    (naive_result.Trace_sim.time /. result.Trace_sim.time)
