(* TOMCATV demo: the paper's Table 1 experiment on one machine size,
   showing how the three compiler versions differ on the same program —
   where the scalar temporaries land, what communication each choice
   induces, and the simulated times.

     dune exec examples/tomcatv_demo.exe [-- P]
*)

open Hpf_lang
open Phpf_core
open Hpf_spmd
open Hpf_benchmarks

let procs () =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8

let describe name options prog =
  let c = Compiler.compile_exn ~options prog in
  let d = c.Compiler.decisions in
  Fmt.pr "--- %s ---@." name;
  (* where did the stencil temporaries land? *)
  List.iter
    (fun v ->
      Ast.iter_program
        (fun s ->
          match s.node with
          | Ast.Assign (Ast.LVar x, _)
            when x = v && Nest.level d.Decisions.nest s.sid > 0 -> (
              match Decisions.def_of_stmt d ~sid:s.sid ~var:v with
              | Some def ->
                  Fmt.pr "  %-4s: %a@." v Decisions.pp_scalar_mapping
                    (Decisions.scalar_mapping_of_def d def)
              | None -> ())
          | _ -> ())
        c.Compiler.prog)
    [ "xy"; "a"; "b" ];
  let inner = Compiler.inner_loop_comms c in
  let vectorized =
    List.filter Hpf_comm.Comm.vectorized c.Compiler.comms
  in
  Fmt.pr "  communication: %d total, %d vectorized, %d stuck in inner loops@."
    (List.length c.Compiler.comms)
    (List.length vectorized) (List.length inner);
  let r, _ = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
  Fmt.pr "  simulated: %a@.@." Trace_sim.pp_result r;
  r.Trace_sim.time

let () =
  let p = procs () in
  let prog = Tomcatv.program ~n:66 ~niter:10 ~p in
  Fmt.pr
    "TOMCATV mesh generator, n = 66, niter = 10, P = %d, (*,block) columns@.@."
    p;
  let t_rep = describe "replication (no privatization)" Variants.replication prog in
  let t_prod =
    describe "producer alignment" Variants.producer_alignment prog
  in
  let t_sel = describe "selected alignment (paper §2.2)" Variants.selected prog in
  Fmt.pr "selected alignment wins: %.1fx over replication, %.1fx over producer alignment@."
    (t_rep /. t_sel) (t_prod /. t_sel)
