(* Scaling study: sweep processor counts and problem sizes for one of
   the benchmarks, printing a speedup table — the kind of data behind
   the paper's Tables 1-3, but parameterized.

     dune exec examples/scaling_study.exe -- [tomcatv|dgefa|appsp] [n]
*)

open Hpf_lang
open Phpf_core
open Hpf_spmd
open Hpf_benchmarks

let time prog options =
  let c = Compiler.compile_exn ~options prog in
  let r, _ = Trace_sim.run ~init:(Init.init c.Compiler.prog) c in
  r.Trace_sim.time

let sweep name (mk : int -> Ast.program) =
  Fmt.pr "%s: scaling with selected alignment@." name;
  Fmt.pr "%6s %12s %10s %12s@." "P" "time (s)" "speedup" "efficiency";
  let t1 = time (mk 1) Variants.selected in
  List.iter
    (fun p ->
      let t = time (mk p) Variants.selected in
      Fmt.pr "%6d %12.4f %10.2f %11.0f%%@." p t (t1 /. t)
        (100.0 *. t1 /. t /. float_of_int p))
    [ 1; 2; 4; 8; 16; 32 ]

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tomcatv" in
  let n =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 0
  in
  match which with
  | "tomcatv" ->
      let n = if n = 0 then 66 else n in
      sweep
        (Fmt.str "TOMCATV n=%d niter=10" n)
        (fun p -> Tomcatv.program ~n ~niter:10 ~p)
  | "dgefa" ->
      let n = if n = 0 then 96 else n in
      sweep (Fmt.str "DGEFA n=%d" n) (fun p -> Dgefa.program ~n ~p)
  | "appsp" ->
      let n = if n = 0 then 18 else n in
      sweep
        (Fmt.str "APPSP 2-D n=%d niter=2" n)
        (fun p ->
          match Hpf_mapping.Grid.factorize ~rank:2 p with
          | [ p1; p2 ] -> Appsp.program_2d ~n ~niter:2 ~p1 ~p2
          | _ -> assert false)
  | other ->
      Fmt.epr "unknown benchmark %s (tomcatv|dgefa|appsp)@." other;
      exit 2
